// ReliableChannel tests — the data-buffering extension the thesis lists as
// required future work (Ch. 6): no frame may be lost to a handover, and
// delivery is in-order exactly-once despite retransmissions.
#include "peerhood/reliable_channel.hpp"

#include <gtest/gtest.h>

#include "handover/handover.hpp"
#include "scenario_util.hpp"

namespace peerhood {
namespace {

using node::Testbed;
using testing::fast_node;
using testing::reliable_bluetooth;

class ReliableChannelTest : public ::testing::Test {
 protected:
  void build(std::uint64_t seed, bool with_bridge = false) {
    testbed_ = std::make_unique<Testbed>(seed);
    testbed_->medium().configure(reliable_bluetooth());
    a_ = &testbed_->add_node("a", {0.0, 0.0},
                             fast_node(MobilityClass::kDynamic));
    s_ = &testbed_->add_node("s", {4.0, 0.0},
                             fast_node(MobilityClass::kStatic));
    if (with_bridge) {
      testbed_->add_node("c", {2.0, 3.0}, fast_node(MobilityClass::kStatic));
    }
    (void)s_->library().register_service(
        ServiceInfo{"rel", "", 0},
        [this](ChannelPtr channel, const wire::ConnectRequest&) {
          server_rel_ = std::make_unique<ReliableChannel>(
              testbed_->sim(), channel);
          server_rel_->set_data_handler([this](const Bytes& frame) {
            received_.push_back(frame);
          });
        });
    testbed_->run_discovery_rounds(3);
    auto result = a_->connect_blocking(s_->mac(), "rel");
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    channel_ = result.value();
    client_rel_ =
        std::make_unique<ReliableChannel>(testbed_->sim(), channel_);
  }

  std::unique_ptr<Testbed> testbed_;
  node::Node* a_{nullptr};
  node::Node* s_{nullptr};
  ChannelPtr channel_;
  std::unique_ptr<ReliableChannel> client_rel_;
  std::unique_ptr<ReliableChannel> server_rel_;
  std::vector<Bytes> received_;
};

TEST_F(ReliableChannelTest, DeliversInOrder) {
  build(1);
  for (std::uint8_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(client_rel_->send(Bytes{i}).ok());
  }
  testbed_->run_for(5.0);
  ASSERT_EQ(received_.size(), 20u);
  for (std::uint8_t i = 0; i < 20; ++i) {
    EXPECT_EQ(received_[i], Bytes{i});
  }
}

TEST_F(ReliableChannelTest, AcksDrainTheOutbox) {
  build(2);
  ASSERT_TRUE(client_rel_->send(Bytes{1}).ok());
  ASSERT_TRUE(client_rel_->send(Bytes{2}).ok());
  EXPECT_EQ(client_rel_->unacked(), 2u);
  testbed_->run_for(5.0);
  EXPECT_EQ(client_rel_->unacked(), 0u);
}

TEST_F(ReliableChannelTest, DuplicatesDeliveredOnce) {
  build(3);
  ASSERT_TRUE(client_rel_->send(Bytes{7}).ok());
  testbed_->run_for(2.0);
  // Force duplicate transmissions of the (already delivered) tail.
  client_rel_->resync();
  client_rel_->resync();
  testbed_->run_for(5.0);
  EXPECT_EQ(received_.size(), 1u);
  EXPECT_EQ(server_rel_->delivered_count(), 1u);
}

TEST_F(ReliableChannelTest, WindowLimitsOutstandingFrames) {
  build(4);
  ReliableConfig tiny;
  tiny.window = 4;
  auto limited = std::make_unique<ReliableChannel>(testbed_->sim(),
                                                   channel_, tiny);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(limited->send(Bytes{1}).ok());
  }
  const Status overflow = limited->send(Bytes{1});
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.error().code, ErrorCode::kCapacityExceeded);
}

TEST_F(ReliableChannelTest, NoLossAcrossHandover) {
  build(5, /*with_bridge=*/true);
  // Degrade the direct link with the paper's artificial decay while a
  // steady stream is in flight; the handover substitutes the connection
  // and the reliable layer retransmits whatever died with the old link.
  const double t0 = testbed_->sim().now().seconds();
  channel_->connection()->set_quality_override([t0](SimTime now) {
    return static_cast<int>(245.0 - (now.seconds() - t0));
  });
  handover::HandoverController controller{a_->library(), channel_, {}};
  controller.start();

  const int total = 60;
  for (int i = 0; i < total; ++i) {
    testbed_->sim().schedule_after(
        seconds(static_cast<double>(i)), [this, i] {
          (void)client_rel_->send(
              Bytes{static_cast<std::uint8_t>(i), 0xEE});
        });
  }
  testbed_->run_for(total + 30.0);
  ASSERT_GE(controller.stats().handovers, 1u);
  ASSERT_EQ(received_.size(), static_cast<std::size_t>(total))
      << "every frame must survive the connection substitution";
  for (int i = 0; i < total; ++i) {
    EXPECT_EQ(received_[static_cast<std::size_t>(i)][0],
              static_cast<std::uint8_t>(i))
        << "in-order delivery across the handover";
  }
}

TEST_F(ReliableChannelTest, RetransmitTimerRecoversSilentLoss) {
  build(6);
  // Simulate a lost data frame: transmit while the peers are briefly "out
  // of range" by writing directly during a quality override of 0 on a
  // *copy* — simplest: send, then drop the server's rx by replacing the
  // channel handler before delivery is possible. Instead we exercise the
  // public path: send with the underlying write failing (closed), then
  // re-open via resync after the channel recovers.
  ASSERT_TRUE(client_rel_->send(Bytes{9}).ok());
  testbed_->run_for(0.05);  // in flight, not yet delivered
  // Frame already on the air; also queue one that will be retransmitted.
  ASSERT_TRUE(client_rel_->send(Bytes{10}).ok());
  testbed_->run_for(20.0);  // retransmit interval passes
  EXPECT_EQ(received_.size(), 2u);
  EXPECT_EQ(client_rel_->unacked(), 0u);
}

}  // namespace
}  // namespace peerhood
