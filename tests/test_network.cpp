#include "net/sim_network.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "net/address.hpp"

namespace peerhood::net {
namespace {

using sim::Vec2;

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : sim_{123}, medium_{sim_}, net_{medium_} {
    // Deterministic establishment for most tests.
    sim::TechnologyParams bt = sim::bluetooth_params();
    bt.connect_failure_prob = 0.0;
    bt.connect_delay_min_s = 1.0;
    bt.connect_delay_max_s = 1.0;
    medium_.configure(bt);
  }

  MacAddress attach(std::uint64_t index, Vec2 position) {
    const MacAddress mac = MacAddress::from_index(index);
    net_.attach_interface(mac, Technology::kBluetooth,
                          std::make_shared<sim::StaticPosition>(position));
    return mac;
  }

  MacAddress attach_mobile(std::uint64_t index,
                           std::shared_ptr<const sim::MobilityModel> model) {
    const MacAddress mac = MacAddress::from_index(index);
    net_.attach_interface(mac, Technology::kBluetooth, std::move(model));
    return mac;
  }

  // Establishes a connection pair synchronously (drives the simulator).
  std::pair<ConnectionPtr, ConnectionPtr> make_pair(MacAddress from,
                                                    const NetAddress& to) {
    ConnectionPtr client;
    ConnectionPtr server;
    EXPECT_TRUE(
        net_.listen(to, [&server](ConnectionPtr c) { server = std::move(c); })
            .ok());
    net_.connect(from, to, [&client](Result<ConnectionPtr> r) {
      ASSERT_TRUE(r.ok()) << r.error().to_string();
      client = std::move(r).value();
    });
    sim_.run_for(seconds(5.0));
    EXPECT_NE(client, nullptr);
    EXPECT_NE(server, nullptr);
    return {client, server};
  }

  sim::Simulator sim_;
  sim::RadioMedium medium_;
  SimNetwork net_;
};

TEST_F(NetworkTest, DoubleBindListenIsAddressInUse) {
  // Same contract as the Posix backend: the first listener keeps the
  // address, the second bind reports kAddressInUse instead of silently
  // stealing or shadowing it.
  const MacAddress b = attach(2, {5.0, 0.0});
  const NetAddress addr{b, Technology::kBluetooth, 7};
  ASSERT_TRUE(net_.listen(addr, [](ConnectionPtr) {}).ok());
  const Status again = net_.listen(addr, [](ConnectionPtr) {});
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, ErrorCode::kAddressInUse);

  // Releasing the address makes it bindable again.
  net_.stop_listening(addr);
  EXPECT_TRUE(net_.listen(addr, [](ConnectionPtr) {}).ok());
}

TEST_F(NetworkTest, ConnectDeliversBothEnds) {
  const MacAddress a = attach(1, {0.0, 0.0});
  const MacAddress b = attach(2, {5.0, 0.0});
  auto [client, server] = make_pair(a, NetAddress{b, Technology::kBluetooth, 7});
  EXPECT_TRUE(client->open());
  EXPECT_TRUE(server->open());
  EXPECT_EQ(client->remote_address().mac, b);
  EXPECT_EQ(server->remote_address().mac, a);
  EXPECT_EQ(client->id(), server->id());
}

TEST_F(NetworkTest, ConnectTakesConfiguredDelay) {
  const MacAddress a = attach(1, {0.0, 0.0});
  const MacAddress b = attach(2, {5.0, 0.0});
  ASSERT_TRUE(net_.listen(NetAddress{b, Technology::kBluetooth, 7},
                          [](ConnectionPtr) {})
                  .ok());
  std::optional<double> resolved_at;
  net_.connect(a, NetAddress{b, Technology::kBluetooth, 7},
               [&](Result<ConnectionPtr> r) {
                 ASSERT_TRUE(r.ok());
                 resolved_at = sim_.now().seconds();
               });
  sim_.run_for(seconds(5.0));
  ASSERT_TRUE(resolved_at.has_value());
  EXPECT_NEAR(*resolved_at, 1.0, 1e-6);
}

TEST_F(NetworkTest, ConnectFailsWithoutListener) {
  const MacAddress a = attach(1, {0.0, 0.0});
  const MacAddress b = attach(2, {5.0, 0.0});
  std::optional<Error> error;
  net_.connect(a, NetAddress{b, Technology::kBluetooth, 99},
               [&](Result<ConnectionPtr> r) {
                 ASSERT_FALSE(r.ok());
                 error = r.error();
               });
  sim_.run_for(seconds(5.0));
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, ErrorCode::kConnectionFailed);
}

TEST_F(NetworkTest, ConnectFailsOutOfRange) {
  const MacAddress a = attach(1, {0.0, 0.0});
  const MacAddress b = attach(2, {100.0, 0.0});
  ASSERT_TRUE(net_.listen(NetAddress{b, Technology::kBluetooth, 7},
                          [](ConnectionPtr) {})
                  .ok());
  std::optional<Error> error;
  net_.connect(a, NetAddress{b, Technology::kBluetooth, 7},
               [&](Result<ConnectionPtr> r) {
                 if (!r.ok()) error = r.error();
               });
  sim_.run_for(seconds(5.0));
  ASSERT_TRUE(error.has_value());
}

TEST_F(NetworkTest, ConnectToSelfRejected) {
  const MacAddress a = attach(1, {0.0, 0.0});
  std::optional<Error> error;
  net_.connect(a, NetAddress{a, Technology::kBluetooth, 7},
               [&](Result<ConnectionPtr> r) {
                 if (!r.ok()) error = r.error();
               });
  sim_.run_for(seconds(1.0));
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, ErrorCode::kInvalidArgument);
}

TEST_F(NetworkTest, FailureInjection) {
  sim::TechnologyParams bt = sim::bluetooth_params();
  bt.connect_failure_prob = 1.0;
  medium_.configure(bt);
  const MacAddress a = attach(1, {0.0, 0.0});
  const MacAddress b = attach(2, {5.0, 0.0});
  ASSERT_TRUE(net_.listen(NetAddress{b, Technology::kBluetooth, 7},
                          [](ConnectionPtr) {})
                  .ok());
  std::optional<Error> error;
  net_.connect(a, NetAddress{b, Technology::kBluetooth, 7},
               [&](Result<ConnectionPtr> r) {
                 if (!r.ok()) error = r.error();
               });
  sim_.run_for(seconds(30.0));
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, ErrorCode::kConnectionFailed);
}

TEST_F(NetworkTest, DataFlowsBothWays) {
  const MacAddress a = attach(1, {0.0, 0.0});
  const MacAddress b = attach(2, {5.0, 0.0});
  auto [client, server] = make_pair(a, NetAddress{b, Technology::kBluetooth, 7});

  Bytes client_got;
  Bytes server_got;
  client->set_data_handler([&](const Bytes& d) { client_got = d; });
  server->set_data_handler([&](const Bytes& d) { server_got = d; });

  ASSERT_TRUE(client->write(Bytes{1, 2}).ok());
  ASSERT_TRUE(server->write(Bytes{3, 4}).ok());
  sim_.run_for(seconds(1.0));
  EXPECT_EQ(server_got, (Bytes{1, 2}));
  EXPECT_EQ(client_got, (Bytes{3, 4}));
}

TEST_F(NetworkTest, FramesBufferWithoutHandler) {
  const MacAddress a = attach(1, {0.0, 0.0});
  const MacAddress b = attach(2, {5.0, 0.0});
  auto [client, server] = make_pair(a, NetAddress{b, Technology::kBluetooth, 7});
  ASSERT_TRUE(client->write(Bytes{9}).ok());
  ASSERT_TRUE(client->write(Bytes{8}).ok());
  sim_.run_for(seconds(1.0));
  EXPECT_EQ(server->poll_frame(), (Bytes{9}));
  EXPECT_EQ(server->poll_frame(), (Bytes{8}));
  EXPECT_FALSE(server->poll_frame().has_value());
}

TEST_F(NetworkTest, SettingHandlerDrainsBuffer) {
  const MacAddress a = attach(1, {0.0, 0.0});
  const MacAddress b = attach(2, {5.0, 0.0});
  auto [client, server] = make_pair(a, NetAddress{b, Technology::kBluetooth, 7});
  ASSERT_TRUE(client->write(Bytes{7}).ok());
  sim_.run_for(seconds(1.0));
  std::vector<Bytes> got;
  server->set_data_handler([&](const Bytes& d) { got.push_back(d); });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (Bytes{7}));
}

TEST_F(NetworkTest, CloseNotifiesPeer) {
  const MacAddress a = attach(1, {0.0, 0.0});
  const MacAddress b = attach(2, {5.0, 0.0});
  auto [client, server] = make_pair(a, NetAddress{b, Technology::kBluetooth, 7});
  bool server_closed = false;
  server->set_close_handler([&] { server_closed = true; });
  client->close();
  EXPECT_FALSE(client->open());
  sim_.run_for(seconds(1.0));
  EXPECT_TRUE(server_closed);
  EXPECT_FALSE(server->open());
}

TEST_F(NetworkTest, LocalCloseDoesNotFireOwnHandler) {
  const MacAddress a = attach(1, {0.0, 0.0});
  const MacAddress b = attach(2, {5.0, 0.0});
  auto [client, server] = make_pair(a, NetAddress{b, Technology::kBluetooth, 7});
  bool fired = false;
  client->set_close_handler([&] { fired = true; });
  client->close();
  sim_.run_for(seconds(1.0));
  EXPECT_FALSE(fired);
}

TEST_F(NetworkTest, WriteAfterCloseFails) {
  const MacAddress a = attach(1, {0.0, 0.0});
  const MacAddress b = attach(2, {5.0, 0.0});
  auto [client, server] = make_pair(a, NetAddress{b, Technology::kBluetooth, 7});
  client->close();
  EXPECT_FALSE(client->write(Bytes{1}).ok());
}

TEST_F(NetworkTest, CoverageLossKillsConnection) {
  const MacAddress a = attach(1, {0.0, 0.0});
  // Walks out of the 10 m range at t = 10 s — after the connection is up
  // and the close handlers below are installed.
  const MacAddress b = attach_mobile(
      2, std::make_shared<sim::LinearMotion>(Vec2{2.0, 0.0}, Vec2{0.8, 0.0}));
  auto [client, server] = make_pair(a, NetAddress{b, Technology::kBluetooth, 7});
  bool client_lost = false;
  bool server_lost = false;
  client->set_close_handler([&] { client_lost = true; });
  server->set_close_handler([&] { server_lost = true; });
  sim_.run_for(seconds(10.0));
  EXPECT_TRUE(client_lost);
  EXPECT_TRUE(server_lost);
  EXPECT_FALSE(client->open());
}

TEST_F(NetworkTest, LinkQualityReflectsDistance) {
  const MacAddress a = attach(1, {0.0, 0.0});
  const MacAddress b = attach(2, {2.0, 0.0});
  const MacAddress c = attach(3, {9.0, 0.0});
  auto [ab_client, ab_server] =
      make_pair(a, NetAddress{b, Technology::kBluetooth, 7});
  auto [ac_client, ac_server] =
      make_pair(a, NetAddress{c, Technology::kBluetooth, 8});
  EXPECT_GT(ab_client->link_quality(), ac_client->link_quality());
}

TEST_F(NetworkTest, QualityOverrideReplacesSampling) {
  const MacAddress a = attach(1, {0.0, 0.0});
  const MacAddress b = attach(2, {1.0, 0.0});
  auto [client, server] = make_pair(a, NetAddress{b, Technology::kBluetooth, 7});
  // The §5.2.1 artificial decay: start at 250, minus 1 per second.
  const double t0 = sim_.now().seconds();
  client->set_quality_override([t0](SimTime now) {
    return static_cast<int>(250 - (now.seconds() - t0));
  });
  EXPECT_EQ(client->link_quality(), 250);
  sim_.run_for(seconds(30.0));
  EXPECT_EQ(client->link_quality(), 220);
}

TEST_F(NetworkTest, OverrideReachingZeroKillsConnection) {
  const MacAddress a = attach(1, {0.0, 0.0});
  const MacAddress b = attach(2, {1.0, 0.0});
  auto [client, server] = make_pair(a, NetAddress{b, Technology::kBluetooth, 7});
  const double t0 = sim_.now().seconds();
  client->set_quality_override([t0](SimTime now) {
    return static_cast<int>(5 - (now.seconds() - t0));
  });
  bool lost = false;
  server->set_close_handler([&] { lost = true; });
  sim_.run_for(seconds(10.0));
  EXPECT_TRUE(lost);
}

TEST_F(NetworkTest, DroppingLastHandleClosesConnection) {
  const MacAddress a = attach(1, {0.0, 0.0});
  const MacAddress b = attach(2, {5.0, 0.0});
  auto [client, server] = make_pair(a, NetAddress{b, Technology::kBluetooth, 7});
  bool server_lost = false;
  server->set_close_handler([&] { server_lost = true; });
  client.reset();  // RAII close
  sim_.run_for(seconds(2.0));
  EXPECT_TRUE(server_lost);
}

TEST_F(NetworkTest, PairsAreReclaimed) {
  const MacAddress a = attach(1, {0.0, 0.0});
  const MacAddress b = attach(2, {5.0, 0.0});
  {
    auto [client, server] =
        make_pair(a, NetAddress{b, Technology::kBluetooth, 7});
    client->close();
  }
  sim_.run_for(seconds(2.0));
  EXPECT_EQ(net_.live_connection_count(), 0u);
}

TEST_F(NetworkTest, DatagramsRouteToHandler) {
  const MacAddress a = attach(1, {0.0, 0.0});
  const MacAddress b = attach(2, {5.0, 0.0});
  Bytes got;
  MacAddress got_from;
  net_.set_datagram_handler(b, Technology::kBluetooth,
                            [&](MacAddress from,
                                std::span<const std::uint8_t> payload) {
                              got.assign(payload.begin(), payload.end());
                              got_from = from;
                            });
  net_.send_datagram(a, b, Technology::kBluetooth, Bytes{5, 5, 5});
  sim_.run_for(seconds(1.0));
  EXPECT_EQ(got, (Bytes{5, 5, 5}));
  EXPECT_EQ(got_from, a);
}

TEST_F(NetworkTest, StopListeningRefusesNewConnections) {
  const MacAddress a = attach(1, {0.0, 0.0});
  const MacAddress b = attach(2, {5.0, 0.0});
  const NetAddress addr{b, Technology::kBluetooth, 7};
  ASSERT_TRUE(net_.listen(addr, [](ConnectionPtr) {}).ok());
  net_.stop_listening(addr);
  std::optional<Error> error;
  net_.connect(a, addr, [&](Result<ConnectionPtr> r) {
    if (!r.ok()) error = r.error();
  });
  sim_.run_for(seconds(5.0));
  EXPECT_TRUE(error.has_value());
}

}  // namespace
}  // namespace peerhood::net
