// AnalyzeNeighbourhoodDevices tests (Fig. 3.13), including the paper's
// Fig. 3.6 walk-through: A learns about D and E from B's and C's snapshots.
#include "discovery/analyzer.hpp"

#include <gtest/gtest.h>

namespace peerhood {
namespace {

SimTime at(double s) { return SimTime{} + seconds(s); }

MacAddress mac(std::uint64_t i) { return MacAddress::from_index(i); }

DeviceRecord direct_record(std::uint64_t index, int quality,
                           MobilityClass mobility = MobilityClass::kStatic) {
  DeviceRecord record;
  record.device.mac = mac(index);
  record.device.name = "n" + std::to_string(index);
  record.device.mobility = mobility;
  record.jump = 0;
  record.quality_sum = quality;
  record.min_link_quality = quality;
  record.via_tech = Technology::kBluetooth;
  return record;
}

NeighbourSnapshotEntry entry(std::uint64_t index, int jump, int quality_sum,
                             int min_quality, std::uint64_t bridge = 0) {
  NeighbourSnapshotEntry e;
  e.device.mac = mac(index);
  e.device.name = "n" + std::to_string(index);
  e.device.mobility = MobilityClass::kStatic;
  e.jump = jump;
  e.quality_sum = quality_sum;
  e.min_link_quality = min_quality;
  if (bridge != 0) e.bridge = mac(bridge);
  return e;
}

TEST(Analyzer, DirectRecordStored) {
  DeviceStorage storage;
  NeighbourhoodAnalyzer analyzer{mac(100)};
  const int changed = analyzer.integrate(storage, direct_record(1, 250), {},
                                         Technology::kBluetooth, at(1.0));
  EXPECT_EQ(changed, 1);
  EXPECT_TRUE(storage.find(mac(1))->is_direct());
}

TEST(Analyzer, NeighbourBecomesOneJumpRoute) {
  DeviceStorage storage;
  NeighbourhoodAnalyzer analyzer{mac(100)};
  // B (quality 240) knows D directly with quality 235.
  analyzer.integrate(storage, direct_record(2, 240),
                     {entry(4, 0, 235, 235)}, Technology::kBluetooth, at(1.0));
  const auto d = storage.find(mac(4));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->jump, 1);
  EXPECT_EQ(d->bridge, mac(2));
  EXPECT_EQ(d->quality_sum, 240 + 235);
  EXPECT_EQ(d->min_link_quality, 235);
}

TEST(Analyzer, JumpIncrementsThroughChain) {
  DeviceStorage storage;
  NeighbourhoodAnalyzer analyzer{mac(100)};
  // B advertises E at jump 1 (E is behind D from B's perspective).
  analyzer.integrate(storage, direct_record(2, 240),
                     {entry(5, 1, 470, 230, 4)}, Technology::kBluetooth,
                     at(1.0));
  const auto e = storage.find(mac(5));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->jump, 2);
  EXPECT_EQ(e->bridge, mac(2)) << "bridge is the responder, not B's bridge";
  EXPECT_EQ(e->quality_sum, 240 + 470);
  EXPECT_EQ(e->min_link_quality, 230);
}

TEST(Analyzer, OwnDeviceFiltered) {
  DeviceStorage storage;
  NeighbourhoodAnalyzer analyzer{mac(100)};
  analyzer.integrate(storage, direct_record(2, 240),
                     {entry(100, 0, 240, 240)}, Technology::kBluetooth,
                     at(1.0));
  EXPECT_FALSE(storage.contains(mac(100)))
      << "own device comparison filter (Fig. 3.13)";
}

TEST(Analyzer, RoutesThroughSelfFiltered) {
  DeviceStorage storage;
  NeighbourhoodAnalyzer analyzer{mac(100)};
  // B's route to device 7 goes through us — accepting it would loop.
  analyzer.integrate(storage, direct_record(2, 240),
                     {entry(7, 1, 470, 230, 100)}, Technology::kBluetooth,
                     at(1.0));
  EXPECT_FALSE(storage.contains(mac(7)));
}

TEST(Analyzer, ResponderEntryIgnored) {
  DeviceStorage storage;
  NeighbourhoodAnalyzer analyzer{mac(100)};
  analyzer.integrate(storage, direct_record(2, 240),
                     {entry(2, 0, 999, 999)}, Technology::kBluetooth, at(1.0));
  const auto b = storage.find(mac(2));
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(b->is_direct());
  EXPECT_EQ(b->quality_sum, 240) << "snapshot must not overwrite the "
                                    "measured direct record";
}

TEST(Analyzer, NeighbourLinksRecordedOnDirectRecord) {
  DeviceStorage storage;
  NeighbourhoodAnalyzer analyzer{mac(100)};
  analyzer.integrate(
      storage, direct_record(2, 240),
      {entry(4, 0, 235, 235), entry(5, 1, 470, 230, 4), entry(100, 0, 240, 240)},
      Technology::kBluetooth, at(1.0));
  const auto b = storage.find(mac(2));
  ASSERT_TRUE(b.has_value());
  // Only B's *direct* neighbours (jump 0), excluding ourselves.
  ASSERT_EQ(b->neighbour_links.size(), 1u);
  EXPECT_EQ(b->neighbour_links[0].mac, mac(4));
  EXPECT_EQ(b->neighbour_links[0].quality, 235);
}

TEST(Analyzer, Figure36Scenario) {
  // A - B - D - E chain plus A - C. After integrating B's and C's
  // snapshots, A knows B, C (direct), D (1 jump via B) and E (2 jumps).
  DeviceStorage storage;
  NeighbourhoodAnalyzer analyzer{mac(10)};  // A
  // B's snapshot: knows A (filtered), D direct, E via D.
  analyzer.integrate(
      storage, direct_record(20, 245),
      {entry(10, 0, 245, 245), entry(40, 0, 240, 240), entry(50, 1, 475, 235, 40)},
      Technology::kBluetooth, at(1.0));
  // C's snapshot: knows only A.
  analyzer.integrate(storage, direct_record(30, 250),
                     {entry(10, 0, 250, 250)}, Technology::kBluetooth,
                     at(1.0));

  EXPECT_EQ(storage.size(), 4u);  // B, C, D, E
  EXPECT_EQ(storage.find(mac(40))->jump, 1);
  EXPECT_EQ(storage.find(mac(40))->bridge, mac(20));
  EXPECT_EQ(storage.find(mac(50))->jump, 2);
  EXPECT_EQ(storage.find(mac(50))->bridge, mac(20));
}

TEST(Analyzer, BetterRouteReplacesWorse) {
  DeviceStorage storage;
  NeighbourhoodAnalyzer analyzer{mac(100)};
  // First: D via B at 2 jumps.
  analyzer.integrate(storage, direct_record(2, 240),
                     {entry(4, 1, 460, 230, 3)}, Technology::kBluetooth,
                     at(1.0));
  EXPECT_EQ(storage.find(mac(4))->jump, 2);
  // Then: C sees D directly — 1 jump wins.
  analyzer.integrate(storage, direct_record(3, 238),
                     {entry(4, 0, 233, 233)}, Technology::kBluetooth, at(2.0));
  const auto d = storage.find(mac(4));
  EXPECT_EQ(d->jump, 1);
  EXPECT_EQ(d->bridge, mac(3));
}

TEST(Analyzer, BridgeMobilityTaken) {
  DeviceStorage storage;
  NeighbourhoodAnalyzer analyzer{mac(100)};
  analyzer.integrate(storage,
                     direct_record(2, 240, MobilityClass::kDynamic),
                     {entry(4, 0, 235, 235)}, Technology::kBluetooth, at(1.0));
  // §3.4.3: "only the nearest device's mobility numbers are considered".
  EXPECT_EQ(storage.find(mac(4))->route_mobility,
            mobility_cost(MobilityClass::kDynamic));
}

TEST(Analyzer, ReconcileRemovesRoutesBridgeForgot) {
  DeviceStorage storage;
  NeighbourhoodAnalyzer analyzer{mac(100)};
  analyzer.integrate(storage, direct_record(2, 240),
                     {entry(4, 0, 235, 235), entry(5, 0, 236, 236)},
                     Technology::kBluetooth, at(1.0));
  EXPECT_TRUE(storage.contains(mac(5)));
  // Next cycle B no longer knows device 5.
  analyzer.integrate(storage, direct_record(2, 240),
                     {entry(4, 0, 235, 235)}, Technology::kBluetooth, at(2.0));
  EXPECT_TRUE(storage.contains(mac(4)));
  EXPECT_FALSE(storage.contains(mac(5)));
}

TEST(Analyzer, LegacyModeStoresNoRoutes) {
  DeviceStorage storage;
  NeighbourhoodAnalyzer analyzer{mac(100), AnalyzerConfig{false}};
  analyzer.integrate(storage, direct_record(2, 240),
                     {entry(4, 0, 235, 235), entry(5, 1, 470, 230, 4)},
                     Technology::kBluetooth, at(1.0));
  EXPECT_EQ(storage.size(), 1u) << "legacy [2] keeps only direct records";
  // ...but the two-jump *vision* (neighbour links) is still there.
  EXPECT_EQ(storage.find(mac(2))->neighbour_links.size(), 1u);
}

TEST(Analyzer, ServicesAndPrototypesPropagate) {
  DeviceStorage storage;
  NeighbourhoodAnalyzer analyzer{mac(100)};
  NeighbourSnapshotEntry e = entry(4, 0, 235, 235);
  e.services = {{"picture.analyse", "compute", 3}};
  e.prototypes = {Technology::kBluetooth, Technology::kWlan};
  analyzer.integrate(storage, direct_record(2, 240), {e},
                     Technology::kBluetooth, at(1.0));
  const auto d = storage.find(mac(4));
  EXPECT_TRUE(d->provides("picture.analyse"));
  EXPECT_EQ(d->prototypes.size(), 2u);
}

}  // namespace
}  // namespace peerhood
