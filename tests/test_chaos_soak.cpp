// Chaos soak: the canned scenarios run under the full fault matrix — bursty
// (Gilbert–Elliott) loss above 10%, corruption, duplication, reorder jitter
// and one mid-run partition — across multiple seeds. The stack must keep its
// sessions alive: traffic flows again after the partition heals, discovery
// re-converges once the faults clear, and the whole run replays bit-identically
// from the same (seed, schedule) pair. Runs under ASan/UBSan in CI, so any
// memory error the fault paths provoke fails the suite.
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace peerhood::scenario {
namespace {

// Bursty loss: stationary bad-state share p_g2b/(p_g2b+p_b2g) = 1/6, so the
// average loss rate is ~0.03*(5/6) + 0.6*(1/6) ~= 12% before quality
// coupling — comfortably above the 10% floor the soak demands.
sim::FaultProfile soak_profile() {
  sim::FaultProfile profile;
  profile.loss_good = 0.03;
  profile.loss_bad = 0.6;
  profile.p_good_to_bad = 0.05;
  profile.p_bad_to_good = 0.25;
  profile.quality_coupling = 0.5;
  profile.corrupt_prob = 0.02;
  profile.duplicate_prob = 0.05;
  profile.reorder_prob = 0.1;
  return profile;
}

// One mid-run partition: `isolated` is cut off from everything in `rest`
// during [20s, 30s) of the body. Traffic before 20s and after 30s proves the
// sessions survive the outage rather than merely predating it.
constexpr double kCutStart = 20.0;
constexpr double kCutEnd = 30.0;

FaultScheduleSpec soak_faults(std::vector<std::string> isolated,
                              std::vector<std::string> rest) {
  FaultScheduleSpec faults;
  faults.profiles.push_back({Technology::kBluetooth, soak_profile()});
  FaultScheduleSpec::Partition cut;
  cut.side_a = std::move(isolated);
  cut.side_b = std::move(rest);
  cut.start_s = kCutStart;
  cut.duration_s = kCutEnd - kCutStart;
  faults.partitions.push_back(cut);
  return faults;
}

struct SoakOutcome {
  ScenarioMetrics metrics;
  bool discovery_reconverged{false};
};

// Runs one scenario under the soak schedule, then clears the fault plane and
// checks that discovery re-converges: the (possibly evicted) client->server
// record is re-learned within a few fault-free rounds.
SoakOutcome run_soak(ScenarioSpec spec) {
  ScenarioRunner runner{std::move(spec)};
  const Status status = runner.setup();
  EXPECT_TRUE(status.ok()) << status.error().to_string();
  if (!status.ok()) return {};
  runner.run();

  SoakOutcome outcome;
  outcome.metrics = runner.metrics();

  // Faults heal: profiles back to fault-free, the partition window has
  // already expired. A few discovery rounds must restore the client's view
  // of its server.
  runner.testbed().medium().fault_plane().set_profile(Technology::kBluetooth,
                                                      sim::FaultProfile{});
  runner.testbed().run_discovery_rounds(4);
  node::Node& client =
      runner.testbed().node(runner.spec().sessions[0].client);
  const MacAddress server_mac =
      runner.testbed().node(runner.spec().sessions[0].server).mac();
  outcome.discovery_reconverged = client.daemon().storage().contains(server_mac);
  return outcome;
}

void check_fault_matrix_fired(const sim::FaultStats& stats) {
  // Every fault kind in the matrix must actually have fired — a soak that
  // silently runs fault-free proves nothing.
  EXPECT_GT(stats.frames_seen, 0u);
  EXPECT_GT(stats.loss_drops, 0u);
  EXPECT_GT(stats.burst_entries, 0u);
  EXPECT_GT(stats.blackout_drops, 0u);
  EXPECT_GT(stats.corrupted, 0u);
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_GT(stats.reordered, 0u);
}

TEST(ChaosSoak, CorridorSurvivesFaultMatrixAcrossSeeds) {
  for (const std::uint64_t seed : {101u, 102u, 103u, 104u, 105u}) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    ScenarioSpec spec = corridor_walk(seed, /*predictive=*/true);
    spec.faults = soak_faults({"walker"}, {"server", "bridge"});
    const SoakOutcome outcome = run_soak(std::move(spec));
    ASSERT_EQ(outcome.metrics.sessions.size(), 1u);
    const SessionMetrics& session = outcome.metrics.sessions[0];
    EXPECT_TRUE(session.connected);
    check_fault_matrix_fired(outcome.metrics.fault_stats);
    // Corrupted frames were caught by the transport's frame check, not
    // delivered as garbage.
    EXPECT_GT(outcome.metrics.corrupt_frames_dropped, 0u);
    // Recovery: at most ~kCutEnd messages can have arrived before the
    // partition healed (1 msg/s), so clearing this floor means the session
    // delivered traffic *after* the faults' worst window.
    EXPECT_GT(session.received, static_cast<std::uint64_t>(kCutEnd) + 10);
    EXPECT_TRUE(outcome.discovery_reconverged);
  }
}

TEST(ChaosSoak, ChurnSurvivesFaultMatrixAcrossSeeds) {
  for (const std::uint64_t seed : {201u, 202u, 203u, 204u, 205u}) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    ScenarioSpec spec = churn(seed, /*predictive=*/true);
    // Isolate both servers: every session must ride out the window on top
    // of the anchor churn that is already cycling routes.
    spec.faults = soak_faults({"srv"}, {"mob", "anchor"});
    const SoakOutcome outcome = run_soak(std::move(spec));
    ASSERT_EQ(outcome.metrics.sessions.size(), 2u);
    check_fault_matrix_fired(outcome.metrics.fault_stats);
    EXPECT_GT(outcome.metrics.corrupt_frames_dropped, 0u);
    for (const SessionMetrics& session : outcome.metrics.sessions) {
      EXPECT_TRUE(session.connected);
    }
    // Post-heal recovery across the pair: at 1 msg/s per session, a pair
    // that died with the partition can have received at most kCutEnd*2
    // frames even on a lossless medium (in practice far fewer, the chaos
    // profile eats ~25%) — so clearing that ceiling proves frames arrived
    // *after* the faults' worst window.
    EXPECT_GT(outcome.metrics.total_received(),
              static_cast<std::uint64_t>(kCutEnd) * 2);
    EXPECT_TRUE(outcome.discovery_reconverged);
  }
}

TEST(ChaosSoak, SameSeedAndScheduleReplayIdentically) {
  const auto run_once = [] {
    ScenarioSpec spec = corridor_walk(77, /*predictive=*/true);
    spec.faults = soak_faults({"walker"}, {"server", "bridge"});
    return run_soak(std::move(spec));
  };
  const SoakOutcome a = run_once();
  const SoakOutcome b = run_once();
  EXPECT_EQ(a.metrics.total_sent(), b.metrics.total_sent());
  EXPECT_EQ(a.metrics.total_received(), b.metrics.total_received());
  EXPECT_EQ(a.metrics.total_handovers(), b.metrics.total_handovers());
  EXPECT_EQ(a.metrics.medium_frames, b.metrics.medium_frames);
  EXPECT_DOUBLE_EQ(a.metrics.total_outage_s(), b.metrics.total_outage_s());
  EXPECT_EQ(a.metrics.corrupt_frames_dropped, b.metrics.corrupt_frames_dropped);
  const sim::FaultStats& fa = a.metrics.fault_stats;
  const sim::FaultStats& fb = b.metrics.fault_stats;
  EXPECT_EQ(fa.frames_seen, fb.frames_seen);
  EXPECT_EQ(fa.loss_drops, fb.loss_drops);
  EXPECT_EQ(fa.blackout_drops, fb.blackout_drops);
  EXPECT_EQ(fa.corrupted, fb.corrupted);
  EXPECT_EQ(fa.duplicated, fb.duplicated);
  EXPECT_EQ(fa.reordered, fb.reordered);
  EXPECT_EQ(fa.burst_entries, fb.burst_entries);
}

// The fault-free regression guard: an empty FaultScheduleSpec must leave the
// run byte-identical to a build that never heard of the fault plane — the
// model is not even constructed, so no RNG stream shifts.
TEST(ChaosSoak, EmptyScheduleLeavesScenarioUntouched) {
  ScenarioSpec with_empty = corridor_walk(7, /*predictive=*/true);
  EXPECT_TRUE(with_empty.faults.empty());
  ScenarioRunner runner{std::move(with_empty)};
  ASSERT_TRUE(runner.setup().ok());
  runner.run();
  // Matches ScenarioRunner.CorridorRunsTrafficAndMeasures — the pre-fault
  // baseline assertions still hold bit-for-bit.
  EXPECT_FALSE(runner.testbed().medium().has_fault_plane());
  const sim::FaultStats& stats = runner.metrics().fault_stats;
  EXPECT_EQ(stats.frames_seen, 0u);
  EXPECT_EQ(runner.metrics().corrupt_frames_dropped, 0u);
  EXPECT_GT(runner.metrics().total_sent(), 80u);
  EXPECT_LE(runner.metrics().frames_lost(), 3u);
}

}  // namespace
}  // namespace peerhood::scenario
