// End-to-end task migration (Ch. 5 / Fig. 5.10): the three §5.3 regimes —
// small task completes in coverage, medium task gets its result routed back
// after the client moved, huge task needs mid-upload handover.
#include <gtest/gtest.h>

#include "migration/task_client.hpp"
#include "migration/task_server.hpp"
#include "scenario_util.hpp"

namespace peerhood {
namespace {

using migration::MigrationOutcome;
using migration::TaskClient;
using migration::TaskClientConfig;
using migration::TaskServer;
using migration::TaskServerConfig;
using node::Testbed;
using testing::fast_node;
using testing::reliable_bluetooth;

TEST(Migration, SmallTaskCompletesLive) {
  Testbed testbed{1};
  testbed.medium().configure(reliable_bluetooth());
  auto& server = testbed.add_node("server", {5.0, 0.0},
                                  fast_node(MobilityClass::kStatic));
  auto& client = testbed.add_node("client", {0.0, 0.0},
                                  fast_node(MobilityClass::kDynamic));
  TaskServer task_server{server.library()};
  task_server.start();
  testbed.run_discovery_rounds(3);

  TaskClientConfig config;
  config.spec.package_count = 5;
  config.spec.package_size = 500;
  config.spec.per_package_processing = milliseconds(200);
  config.spec.send_interval = milliseconds(100);
  TaskClient task_client{client.library(), server.mac(), "picture.analyse",
                         config};
  std::optional<MigrationOutcome> outcome;
  task_client.run([&](const MigrationOutcome& o) { outcome = o; });
  testbed.run_for(120.0);

  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, MigrationOutcome::Kind::kCompletedLive);
  EXPECT_FALSE(outcome->upload_interrupted);
  EXPECT_EQ(task_server.stats().uploads_completed, 1u);
  EXPECT_EQ(task_server.stats().results_live, 1u);
  EXPECT_EQ(task_server.stats().results_routed, 0u);
}

TEST(Migration, MediumTaskResultRoutedAfterClientMoves) {
  // §5.3 case 2: "the connection is broken during the processing time after
  // the server has already received all picture information ... server
  // looks for the device in its neighborhood routing table and tries to
  // send the result back after the task processing."
  Testbed testbed{2};
  testbed.medium().configure(reliable_bluetooth());
  auto& server = testbed.add_node("server", {0.0, 0.0},
                                  fast_node(MobilityClass::kStatic));
  testbed.add_node("bridge", {8.0, 0.0}, fast_node(MobilityClass::kStatic));
  auto& client = testbed.add_mobile_node(
      "client",
      std::make_shared<sim::WaypointPath>(
          std::vector<sim::WaypointPath::Waypoint>{
              {SimTime{} + seconds(0.0), {3.0, 0.0}},
              {SimTime{} + seconds(70.0), {3.0, 0.0}},
              {SimTime{} + seconds(110.0), {14.0, 0.0}},
          }),
      fast_node(MobilityClass::kDynamic));

  TaskServerConfig server_config;
  server_config.result_routing.max_attempts = 8;
  TaskServer task_server{server.library(), server_config};
  task_server.start();
  testbed.run_discovery_rounds(3);

  TaskClientConfig config;
  config.spec.package_count = 10;
  config.spec.package_size = 1000;
  // 10 x 9 s = 90 s of processing: finishes long after the client left.
  config.spec.per_package_processing = seconds(9.0);
  config.spec.send_interval = milliseconds(200);
  config.result_timeout = seconds(500.0);
  TaskClient task_client{client.library(), server.mac(), "picture.analyse",
                         config};
  std::optional<MigrationOutcome> outcome;
  task_client.run([&](const MigrationOutcome& o) { outcome = o; });
  testbed.run_for(500.0);

  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, MigrationOutcome::Kind::kCompletedRouted)
      << "error: " << outcome->error.to_string();
  EXPECT_FALSE(outcome->upload_interrupted);
  EXPECT_EQ(task_server.stats().results_routed, 1u);
}

TEST(Migration, HugeTaskSurvivesMidUploadHandover) {
  // §5.3 case 3: the connection breaks during the package transmission;
  // the handover thread re-establishes through a neighbour node and the
  // upload resumes from the server's progress marker.
  Testbed testbed{3};
  testbed.medium().configure(reliable_bluetooth());
  auto& server = testbed.add_node("server", {0.0, 0.0},
                                  fast_node(MobilityClass::kStatic));
  testbed.add_node("bridge", {8.0, 0.0}, fast_node(MobilityClass::kStatic));
  auto& client = testbed.add_mobile_node(
      "client",
      std::make_shared<sim::WaypointPath>(
          std::vector<sim::WaypointPath::Waypoint>{
              {SimTime{} + seconds(0.0), {2.0, 0.0}},
              {SimTime{} + seconds(50.0), {2.0, 0.0}},
              {SimTime{} + seconds(106.0), {16.0, 0.0}},
          }),
      fast_node(MobilityClass::kDynamic));

  TaskServer task_server{server.library()};
  task_server.start();
  testbed.run_discovery_rounds(3);

  TaskClientConfig config;
  config.spec.package_count = 120;  // 1 package/s: upload spans the walk
  config.spec.package_size = 800;
  config.spec.per_package_processing = milliseconds(100);
  config.spec.send_interval = seconds(1.0);
  config.result_timeout = seconds(600.0);
  TaskClient task_client{client.library(), server.mac(), "picture.analyse",
                         config};
  std::optional<MigrationOutcome> outcome;
  task_client.run([&](const MigrationOutcome& o) { outcome = o; });
  testbed.run_for(600.0);

  ASSERT_TRUE(outcome.has_value());
  EXPECT_GE(outcome->handovers, 1u) << "upload must be re-routed mid-flight";
  EXPECT_NE(outcome->kind, MigrationOutcome::Kind::kFailed)
      << "error: " << outcome->error.to_string();
  EXPECT_EQ(task_server.stats().uploads_completed, 1u);
  EXPECT_GE(task_server.stats().resumes_seen, 1u);
}

TEST(Migration, FailsWhenServerNeverReachable) {
  Testbed testbed{4};
  testbed.medium().configure(reliable_bluetooth());
  auto& client = testbed.add_node("client", {0.0, 0.0},
                                  fast_node(MobilityClass::kDynamic));
  testbed.run_discovery_rounds(2);
  TaskClientConfig config;
  config.result_timeout = seconds(30.0);
  TaskClient task_client{client.library(), MacAddress::from_index(77),
                         "picture.analyse", config};
  std::optional<MigrationOutcome> outcome;
  task_client.run([&](const MigrationOutcome& o) { outcome = o; });
  testbed.run_for(60.0);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, MigrationOutcome::Kind::kFailed);
}

TEST(Migration, ZeroPackageTaskStillReturnsResult) {
  Testbed testbed{5};
  testbed.medium().configure(reliable_bluetooth());
  auto& server = testbed.add_node("server", {5.0, 0.0},
                                  fast_node(MobilityClass::kStatic));
  auto& client = testbed.add_node("client", {0.0, 0.0},
                                  fast_node(MobilityClass::kDynamic));
  TaskServer task_server{server.library()};
  task_server.start();
  testbed.run_discovery_rounds(3);
  TaskClientConfig config;
  config.spec.package_count = 0;
  TaskClient task_client{client.library(), server.mac(), "picture.analyse",
                         config};
  std::optional<MigrationOutcome> outcome;
  task_client.run([&](const MigrationOutcome& o) { outcome = o; });
  testbed.run_for(60.0);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->kind, MigrationOutcome::Kind::kCompletedLive);
}

TEST(Migration, TwoClientsShareOneServer) {
  Testbed testbed{6};
  testbed.medium().configure(reliable_bluetooth());
  auto& server = testbed.add_node("server", {0.0, 0.0},
                                  fast_node(MobilityClass::kStatic));
  auto& c1 = testbed.add_node("c1", {4.0, 0.0},
                              fast_node(MobilityClass::kDynamic));
  auto& c2 = testbed.add_node("c2", {-4.0, 0.0},
                              fast_node(MobilityClass::kDynamic));
  TaskServer task_server{server.library()};
  task_server.start();
  testbed.run_discovery_rounds(3);

  TaskClientConfig config;
  config.spec.package_count = 4;
  config.spec.send_interval = milliseconds(100);
  config.spec.per_package_processing = milliseconds(100);
  TaskClient t1{c1.library(), server.mac(), "picture.analyse", config};
  TaskClient t2{c2.library(), server.mac(), "picture.analyse", config};
  std::optional<MigrationOutcome> o1;
  std::optional<MigrationOutcome> o2;
  t1.run([&](const MigrationOutcome& o) { o1 = o; });
  t2.run([&](const MigrationOutcome& o) { o2 = o; });
  testbed.run_for(120.0);
  ASSERT_TRUE(o1.has_value());
  ASSERT_TRUE(o2.has_value());
  EXPECT_EQ(o1->kind, MigrationOutcome::Kind::kCompletedLive);
  EXPECT_EQ(o2->kind, MigrationOutcome::Kind::kCompletedLive);
  EXPECT_EQ(task_server.stats().sessions, 2u);
}

}  // namespace
}  // namespace peerhood
