// Engine + Library: the Fig. 2.5 connect sequence, service dispatch,
// session registry and connection re-establishment.
#include <gtest/gtest.h>

#include "scenario_util.hpp"

namespace peerhood {
namespace {

using node::Testbed;
using testing::fast_node;
using testing::reliable_bluetooth;

class EngineLibraryTest : public ::testing::Test {
 protected:
  EngineLibraryTest() : testbed_{42} {
    testbed_.medium().configure(reliable_bluetooth());
    client_ = &testbed_.add_node("client", {0.0, 0.0},
                                 fast_node(MobilityClass::kDynamic));
    server_ = &testbed_.add_node("server", {5.0, 0.0},
                                 fast_node(MobilityClass::kStatic));
    // Echo service: send every frame straight back.
    (void)server_->library().register_service(
        ServiceInfo{"echo", "test", 0},
        [this](ChannelPtr channel, const wire::ConnectRequest&) {
          server_channels_.push_back(channel);
          // Ownership stays in the fixture vector; the echo handler must not
          // keep its own channel alive (see common/handler_slot.hpp).
          channel->set_data_handler([raw = channel.get()](const Bytes& frame) {
            (void)raw->write(frame);
          });
        });
    testbed_.run_discovery_rounds(3);
  }

  Testbed testbed_{42};
  node::Node* client_{nullptr};
  node::Node* server_{nullptr};
  std::vector<ChannelPtr> server_channels_;
};

TEST_F(EngineLibraryTest, ConnectAndEcho) {
  auto result = client_->connect_blocking(server_->mac(), "echo");
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const ChannelPtr channel = result.value();
  EXPECT_TRUE(channel->open());
  EXPECT_EQ(channel->peer(), server_->mac());
  EXPECT_EQ(channel->service(), "echo");

  Bytes reply;
  channel->set_data_handler([&](const Bytes& frame) { reply = frame; });
  ASSERT_TRUE(channel->write(Bytes{1, 2, 3}).ok());
  testbed_.run_for(5.0);
  EXPECT_EQ(reply, (Bytes{1, 2, 3}));
}

TEST_F(EngineLibraryTest, ServerSeesClientIdentity) {
  Library::ConnectOptions options;
  options.include_client_params = true;
  options.reconnect_service = "client.cb";
  auto result = client_->connect_blocking(server_->mac(), "echo", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(server_channels_.size(), 1u);
  EXPECT_EQ(server_channels_[0]->peer(), client_->mac());
  ASSERT_TRUE(server_channels_[0]->client_params.has_value());
  EXPECT_EQ(server_channels_[0]->client_params->reconnect_service,
            "client.cb");
  EXPECT_EQ(server_channels_[0]->session_id(), result.value()->session_id());
}

TEST_F(EngineLibraryTest, UnknownDeviceFails) {
  auto result =
      client_->connect_blocking(MacAddress::from_index(999), "echo");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kNoSuchDevice);
}

TEST_F(EngineLibraryTest, UnknownServiceFailsLocally) {
  auto result = client_->connect_blocking(server_->mac(), "nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kNoSuchService);
}

TEST_F(EngineLibraryTest, UnregisteredServiceRejectedByEngine) {
  Library::ConnectOptions options;
  options.skip_service_check = true;  // bypass the local storage check
  auto result = client_->connect_blocking(server_->mac(), "ghost", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kNoSuchService);
}

TEST_F(EngineLibraryTest, DuplicateServiceRegistrationRejected) {
  const Status again = server_->library().register_service(
      ServiceInfo{"echo", "", 0}, [](ChannelPtr, const wire::ConnectRequest&) {});
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, ErrorCode::kInvalidArgument);
}

TEST_F(EngineLibraryTest, ResumeSubstitutesServerConnection) {
  auto result = client_->connect_blocking(server_->mac(), "echo");
  ASSERT_TRUE(result.ok());
  const ChannelPtr channel = result.value();

  bool server_handover_seen = false;
  ASSERT_EQ(server_channels_.size(), 1u);
  server_channels_[0]->set_handover_handler(
      [&](const net::ConnectionPtr&) { server_handover_seen = true; });

  // Re-establish directly (same session id — the Engine matches it).
  std::optional<Status> resumed;
  client_->library().resume_direct(channel,
                                   [&](Status s) { resumed = s; });
  testbed_.run_for(20.0);
  ASSERT_TRUE(resumed.has_value());
  ASSERT_TRUE(resumed->ok()) << resumed->error().to_string();
  EXPECT_TRUE(server_handover_seen);

  // The session still works end-to-end after substitution.
  Bytes reply;
  channel->set_data_handler([&](const Bytes& frame) { reply = frame; });
  ASSERT_TRUE(channel->write(Bytes{9}).ok());
  testbed_.run_for(5.0);
  EXPECT_EQ(reply, (Bytes{9}));
}

TEST_F(EngineLibraryTest, ResumeUnknownSessionFails) {
  auto result = client_->connect_blocking(server_->mac(), "echo");
  ASSERT_TRUE(result.ok());
  const ChannelPtr channel = result.value();
  // Drop the server-side session, then try to resume.
  server_->daemon().engine().unregister_session(channel->session_id());
  server_channels_.clear();
  std::optional<Status> resumed;
  client_->library().resume_direct(channel, [&](Status s) { resumed = s; });
  testbed_.run_for(20.0);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_FALSE(resumed->ok());
}

TEST_F(EngineLibraryTest, EngineStatsCount) {
  (void)client_->connect_blocking(server_->mac(), "echo");
  const Engine::Stats& stats = server_->daemon().engine().stats();
  EXPECT_GE(stats.accepted, 1u);
  EXPECT_GE(stats.connects, 1u);
}

TEST_F(EngineLibraryTest, GetDeviceListMatchesStorage) {
  const auto list = client_->library().get_device_list();
  EXPECT_EQ(list.size(), client_->daemon().storage().size());
  ASSERT_FALSE(list.empty());
}

TEST_F(EngineLibraryTest, ChannelSendingFlagDefaultsTrue) {
  auto result = client_->connect_blocking(server_->mac(), "echo");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value()->sending());
  result.value()->set_sending(false);
  EXPECT_FALSE(result.value()->sending());
}

// Regression for the old mutable-erase-in-const find_session: expiry is now
// explicit. A const lookup never mutates the registry; prune_session removes
// exactly the expired entry and leaves live and unknown sessions alone.
TEST(EngineSessionRegistry, ExpiredWeakSessionIsPrunedExplicitly) {
  sim::Simulator sim{1};
  sim::RadioMedium medium{sim};
  net::SimNetwork network{medium};
  Engine engine{network, MacAddress::from_index(1)};

  auto live =
      std::make_shared<Channel>(7, "echo", MacAddress::from_index(2), nullptr);
  auto doomed =
      std::make_shared<Channel>(8, "echo", MacAddress::from_index(3), nullptr);
  engine.register_session(live);
  engine.register_session(doomed);
  EXPECT_EQ(engine.session_count(), 2u);

  doomed.reset();  // the channel expires; the registry entry goes stale
  EXPECT_EQ(engine.find_session(8), nullptr);
  EXPECT_EQ(engine.session_count(), 2u);  // const lookup must not mutate

  EXPECT_FALSE(engine.prune_session(7));   // live session: kept
  EXPECT_FALSE(engine.prune_session(99));  // unknown id: no-op
  EXPECT_EQ(engine.session_count(), 2u);

  EXPECT_TRUE(engine.prune_session(8));  // expired entry: removed
  EXPECT_EQ(engine.session_count(), 1u);
  EXPECT_FALSE(engine.prune_session(8));
  EXPECT_NE(engine.find_session(7), nullptr);
}

}  // namespace
}  // namespace peerhood
