#include "discovery/device_storage.hpp"

#include <gtest/gtest.h>

namespace peerhood {
namespace {

SimTime at(double s) { return SimTime{} + seconds(s); }

DeviceRecord direct(std::uint64_t index, int quality,
                    MobilityClass mobility = MobilityClass::kStatic,
                    Technology tech = Technology::kBluetooth) {
  DeviceRecord record;
  record.device.mac = MacAddress::from_index(index);
  record.device.name = "n" + std::to_string(index);
  record.device.mobility = mobility;
  record.jump = 0;
  record.quality_sum = quality;
  record.min_link_quality = quality;
  record.via_tech = tech;
  return record;
}

DeviceRecord routed(std::uint64_t index, int jump, std::uint64_t bridge,
                    int quality_sum, int min_quality, int mobility = 0) {
  DeviceRecord record;
  record.device.mac = MacAddress::from_index(index);
  record.jump = jump;
  record.bridge = MacAddress::from_index(bridge);
  record.quality_sum = quality_sum;
  record.min_link_quality = min_quality;
  record.route_mobility = mobility;
  return record;
}

TEST(DeviceStorage, InsertAndFind) {
  DeviceStorage storage;
  EXPECT_TRUE(storage.upsert(direct(1, 250)));
  EXPECT_EQ(storage.size(), 1u);
  const auto found = storage.find(MacAddress::from_index(1));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->quality_sum, 250);
  EXPECT_TRUE(found->is_direct());
  EXPECT_FALSE(storage.find(MacAddress::from_index(2)).has_value());
}

TEST(DeviceStorage, SameRouteAlwaysRefreshes) {
  DeviceStorage storage;
  DeviceRecord first = direct(1, 250);
  first.last_seen = at(10.0);
  storage.upsert(first);
  // Same route, *lower* quality: must still refresh (liveness update).
  DeviceRecord second = direct(1, 200);
  second.last_seen = at(20.0);
  EXPECT_TRUE(storage.upsert(second));
  const auto found = storage.find(MacAddress::from_index(1));
  EXPECT_EQ(found->quality_sum, 200);
  EXPECT_EQ(found->last_seen, at(20.0));
}

TEST(DeviceStorage, DirectBeatsRouted) {
  DeviceStorage storage;
  storage.upsert(routed(1, 2, 9, 700, 240));
  EXPECT_TRUE(storage.upsert(direct(1, 231)));
  EXPECT_TRUE(storage.find(MacAddress::from_index(1))->is_direct());
}

TEST(DeviceStorage, WorseRouteRejectedButRefreshesLiveness) {
  DeviceStorage storage;
  DeviceRecord good = routed(1, 1, 9, 480, 240);
  good.last_seen = at(5.0);
  storage.upsert(good);
  DeviceRecord worse = routed(1, 3, 8, 900, 235);
  worse.last_seen = at(50.0);
  EXPECT_FALSE(storage.upsert(worse));
  const auto found = storage.find(MacAddress::from_index(1));
  EXPECT_EQ(found->jump, 1);
  EXPECT_EQ(found->last_seen, at(50.0)) << "liveness must still refresh";
}

TEST(DeviceStorage, MaxJumpCeilingEnforced) {
  RoutePolicy policy;
  policy.max_jumps = 3;
  DeviceStorage storage{policy};
  EXPECT_FALSE(storage.upsert(routed(1, 4, 9, 999, 240)));
  EXPECT_TRUE(storage.upsert(routed(1, 3, 9, 900, 240)));
}

TEST(DeviceStorage, SnapshotAndDirectNeighbours) {
  DeviceStorage storage;
  storage.upsert(direct(1, 250));
  storage.upsert(direct(2, 240));
  storage.upsert(routed(3, 1, 1, 480, 235));
  EXPECT_EQ(storage.snapshot().size(), 3u);
  EXPECT_EQ(storage.direct_neighbours().size(), 2u);
}

TEST(DeviceStorage, ProvidersOf) {
  DeviceStorage storage;
  DeviceRecord a = direct(1, 250);
  a.services = {{"echo", "", 1}, {"compute", "", 2}};
  DeviceRecord b = routed(2, 1, 1, 480, 235);
  b.services = {{"compute", "", 2}};
  storage.upsert(a);
  storage.upsert(b);
  EXPECT_EQ(storage.providers_of("compute").size(), 2u);
  EXPECT_EQ(storage.providers_of("echo").size(), 1u);
  EXPECT_TRUE(storage.providers_of("nope").empty());
}

TEST(DeviceStorage, AgeDirectDropsAfterMaxMissed) {
  DeviceStorage storage;
  storage.upsert(direct(1, 250));
  storage.upsert(direct(2, 250));
  // Device 2 responds, device 1 does not.
  const std::vector<MacAddress> responders{MacAddress::from_index(2)};
  EXPECT_TRUE(storage.age_direct(Technology::kBluetooth, responders, 2,
                                 at(10.0)).empty());
  EXPECT_TRUE(storage.age_direct(Technology::kBluetooth, responders, 2,
                                 at(20.0)).empty());
  const auto removed = storage.age_direct(Technology::kBluetooth, responders,
                                          2, at(30.0));
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], MacAddress::from_index(1));
  EXPECT_FALSE(storage.contains(MacAddress::from_index(1)));
  EXPECT_TRUE(storage.contains(MacAddress::from_index(2)));
}

TEST(DeviceStorage, RespondingResetsAge) {
  DeviceStorage storage;
  storage.upsert(direct(1, 250));
  const std::vector<MacAddress> nobody{};
  const std::vector<MacAddress> one{MacAddress::from_index(1)};
  (void)storage.age_direct(Technology::kBluetooth, nobody, 2, at(10.0));
  (void)storage.age_direct(Technology::kBluetooth, nobody, 2, at(20.0));
  (void)storage.age_direct(Technology::kBluetooth, one, 2, at(30.0));
  // Counter reset; two more misses still below the limit.
  (void)storage.age_direct(Technology::kBluetooth, nobody, 2, at(40.0));
  (void)storage.age_direct(Technology::kBluetooth, nobody, 2, at(50.0));
  EXPECT_TRUE(storage.contains(MacAddress::from_index(1)));
}

TEST(DeviceStorage, AgingCascadesToRoutes) {
  DeviceStorage storage;
  storage.upsert(direct(1, 250));
  storage.upsert(routed(5, 1, 1, 480, 235));  // via device 1
  const std::vector<MacAddress> nobody{};
  (void)storage.age_direct(Technology::kBluetooth, nobody, 0, at(10.0));
  EXPECT_FALSE(storage.contains(MacAddress::from_index(1)));
  EXPECT_FALSE(storage.contains(MacAddress::from_index(5)))
      << "routes through a vanished bridge must disappear";
}

TEST(DeviceStorage, AgeIsPerTechnology) {
  DeviceStorage storage;
  storage.upsert(direct(1, 250, MobilityClass::kStatic, Technology::kWlan));
  const std::vector<MacAddress> nobody{};
  (void)storage.age_direct(Technology::kBluetooth, nobody, 0, at(10.0));
  EXPECT_TRUE(storage.contains(MacAddress::from_index(1)))
      << "bluetooth aging must not touch wlan records";
}

TEST(DeviceStorage, ReconcileBridgeDropsStaleRoutes) {
  DeviceStorage storage;
  storage.upsert(direct(1, 250));
  storage.upsert(routed(5, 1, 1, 480, 235));
  storage.upsert(routed(6, 1, 1, 470, 235));
  // Bridge 1 now only advertises device 5.
  storage.reconcile_bridge(MacAddress::from_index(1),
                           {MacAddress::from_index(5)});
  EXPECT_TRUE(storage.contains(MacAddress::from_index(5)));
  EXPECT_FALSE(storage.contains(MacAddress::from_index(6)));
  EXPECT_TRUE(storage.contains(MacAddress::from_index(1)))
      << "the direct record of the bridge itself is untouched";
}

TEST(DeviceStorage, RemoveRoutesVia) {
  DeviceStorage storage;
  storage.upsert(routed(5, 1, 1, 480, 235));
  storage.upsert(routed(6, 2, 2, 700, 235));
  storage.remove_routes_via(MacAddress::from_index(1));
  EXPECT_FALSE(storage.contains(MacAddress::from_index(5)));
  EXPECT_TRUE(storage.contains(MacAddress::from_index(6)));
}

TEST(DeviceStorage, GenerationTracksAdvertisedContentOnly) {
  DeviceStorage storage;
  const std::uint32_t start = storage.generation();

  // Membership changes bump.
  EXPECT_TRUE(storage.upsert(direct(1, 250)));
  EXPECT_NE(storage.generation(), start);
  const std::uint32_t after_insert = storage.generation();

  // Re-upserting identical advertised content refreshes liveness only.
  DeviceRecord same = direct(1, 250);
  same.last_seen = at(9.0);
  same.neighbour_links = {{MacAddress::from_index(7), 200}};
  EXPECT_TRUE(storage.upsert(std::move(same)));
  EXPECT_EQ(storage.generation(), after_insert)
      << "liveness/neighbour-link refresh must not churn the generation";

  // A quality change is advertised content: bump.
  EXPECT_TRUE(storage.upsert(direct(1, 240)));
  EXPECT_NE(storage.generation(), after_insert);
  const std::uint32_t after_quality = storage.generation();

  // Rejected worse route: no bump.
  EXPECT_FALSE(storage.upsert(routed(1, 2, 3, 100, 100)));
  EXPECT_EQ(storage.generation(), after_quality);

  // Removal bumps both counters.
  const std::uint32_t removal = storage.weakening_generation();
  storage.remove(MacAddress::from_index(1));
  EXPECT_NE(storage.generation(), after_quality);
  EXPECT_NE(storage.weakening_generation(), removal);

  // Removing a non-existent record bumps nothing.
  const std::uint32_t gen = storage.generation();
  storage.remove(MacAddress::from_index(42));
  EXPECT_EQ(storage.generation(), gen);
}

TEST(DeviceStorage, GenerationCoversEveryAdvertisedField) {
  // Every field a NeighbourSnapshotEntry ships must, when changed alone,
  // move the generation — otherwise the snapshot cache would serve stale
  // frames as kNotModified. Mirrors the field list in advertised_equal /
  // snapshot_entries / encode_snapshot_entry.
  const auto base = [] {
    DeviceRecord r = direct(1, 250);
    r.device.name = "n1";
    r.device.checksum = 5;
    r.device.mobility = MobilityClass::kStatic;
    r.prototypes = {Technology::kBluetooth};
    r.services = {{"svc", "", 2}};
    return r;
  };
  const auto expect_bump = [&](auto mutate, const char* what) {
    DeviceStorage storage;
    ASSERT_TRUE(storage.upsert(base()));
    const std::uint32_t gen = storage.generation();
    DeviceRecord changed = base();
    mutate(changed);
    ASSERT_TRUE(storage.upsert(std::move(changed))) << what;
    EXPECT_NE(storage.generation(), gen) << what;
  };
  expect_bump([](DeviceRecord& r) { r.device.name = "renamed"; },
              "device.name");
  expect_bump([](DeviceRecord& r) { r.device.checksum = 99; },
              "device.checksum");
  expect_bump([](DeviceRecord& r) { r.device.mobility = MobilityClass::kHybrid; },
              "device.mobility");
  expect_bump([](DeviceRecord& r) { r.prototypes.push_back(Technology::kWlan); },
              "prototypes");
  expect_bump([](DeviceRecord& r) { r.services.push_back({"extra", "", 3}); },
              "services");
  expect_bump([](DeviceRecord& r) { r.quality_sum = 100; }, "quality_sum");
  expect_bump([](DeviceRecord& r) { r.min_link_quality = 100; },
              "min_link_quality");
  // jump/bridge change the route identity (different-route upsert paths)
  // and are covered by the insert/replace tests above.
}

TEST(DeviceStorage, WeakeningGenerationTracksDegradationAndRemoval) {
  DeviceStorage storage;
  ASSERT_TRUE(storage.upsert(direct(1, 250)));
  const std::uint32_t after_insert = storage.weakening_generation();

  // Same-route refresh with *better* quality: content changed, nothing got
  // weaker — previously rejected candidates cannot newly win.
  EXPECT_TRUE(storage.upsert(direct(1, 255)));
  EXPECT_EQ(storage.weakening_generation(), after_insert);

  // Same-route refresh with *worse* quality: a rejected alternative could
  // now beat the stored route, so baselines must be invalidated.
  EXPECT_TRUE(storage.upsert(direct(1, 200)));
  EXPECT_NE(storage.weakening_generation(), after_insert);
  const std::uint32_t after_weaken = storage.weakening_generation();

  // Identical content: no movement.
  EXPECT_TRUE(storage.upsert(direct(1, 200)));
  EXPECT_EQ(storage.weakening_generation(), after_weaken);

  // The kNotModified fast path (refresh_direct) follows the same rule:
  // quality up — not a weakening; quality down — weakening.
  EXPECT_TRUE(storage.refresh_direct(MacAddress::from_index(1), 220, at(1.0)));
  EXPECT_EQ(storage.weakening_generation(), after_weaken);
  EXPECT_TRUE(storage.refresh_direct(MacAddress::from_index(1), 180, at(2.0)));
  EXPECT_NE(storage.weakening_generation(), after_weaken);
}

TEST(DeviceStorage, AgingRefreshKeepsGenerationStable) {
  DeviceStorage storage;
  ASSERT_TRUE(storage.upsert(direct(1, 250)));
  ASSERT_TRUE(storage.upsert(direct(2, 250)));
  const std::uint32_t gen = storage.generation();

  // Everyone responds: timestamps refresh, nothing advertised changes.
  const std::vector<MacAddress> responders{MacAddress::from_index(1),
                                           MacAddress::from_index(2)};
  EXPECT_TRUE(
      storage.age_direct(Technology::kBluetooth, responders, 3, at(1.0))
          .empty());
  EXPECT_EQ(storage.generation(), gen);

  // A missed loop (no removal yet) still does not change advertised state.
  EXPECT_TRUE(storage
                  .age_direct(Technology::kBluetooth,
                              {MacAddress::from_index(1)}, 3, at(2.0))
                  .empty());
  EXPECT_EQ(storage.generation(), gen);

  // The eventual drop does.
  for (int i = 0; i < 4; ++i) {
    storage.age_direct(Technology::kBluetooth, {MacAddress::from_index(1)}, 3,
                       at(3.0 + i));
  }
  EXPECT_FALSE(storage.contains(MacAddress::from_index(2)));
  EXPECT_NE(storage.generation(), gen);
}

TEST(DeviceStorage, TouchRefreshesLivenessWithoutGenerationBump) {
  DeviceStorage storage;
  DeviceRecord record = direct(1, 250);
  record.last_seen = at(1.0);
  record.missed_loops = 2;
  ASSERT_TRUE(storage.upsert(std::move(record)));
  const std::uint32_t gen = storage.generation();

  EXPECT_TRUE(storage.touch(MacAddress::from_index(1), at(5.0)));
  EXPECT_FALSE(storage.touch(MacAddress::from_index(9), at(5.0)));
  EXPECT_EQ(storage.generation(), gen);

  const auto found = storage.find(MacAddress::from_index(1));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->last_seen, at(5.0));
  EXPECT_EQ(found->missed_loops, 0);

  // touch never rolls a newer timestamp back.
  EXPECT_TRUE(storage.touch(MacAddress::from_index(1), at(2.0)));
  EXPECT_EQ(storage.find(MacAddress::from_index(1))->last_seen, at(5.0));
}

TEST(DeviceStorage, ContainsDirect) {
  DeviceStorage storage;
  ASSERT_TRUE(storage.upsert(direct(1, 250)));
  ASSERT_TRUE(storage.upsert(routed(2, 1, 1, 400, 235)));
  EXPECT_TRUE(storage.contains_direct(MacAddress::from_index(1)));
  EXPECT_FALSE(storage.contains_direct(MacAddress::from_index(2)));
  EXPECT_FALSE(storage.contains_direct(MacAddress::from_index(3)));
}

TEST(DeviceRecord, ServiceLookup) {
  DeviceRecord record = direct(1, 250);
  record.services = {{"echo", "", 1}};
  EXPECT_TRUE(record.provides("echo"));
  EXPECT_FALSE(record.provides("other"));
  const auto svc = record.find_service("echo");
  ASSERT_TRUE(svc.has_value());
  EXPECT_EQ(svc->port, 1);
}

}  // namespace
}  // namespace peerhood
