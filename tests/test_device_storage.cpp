#include "discovery/device_storage.hpp"

#include <gtest/gtest.h>

namespace peerhood {
namespace {

SimTime at(double s) { return SimTime{} + seconds(s); }

DeviceRecord direct(std::uint64_t index, int quality,
                    MobilityClass mobility = MobilityClass::kStatic,
                    Technology tech = Technology::kBluetooth) {
  DeviceRecord record;
  record.device.mac = MacAddress::from_index(index);
  record.device.name = "n" + std::to_string(index);
  record.device.mobility = mobility;
  record.jump = 0;
  record.quality_sum = quality;
  record.min_link_quality = quality;
  record.via_tech = tech;
  return record;
}

DeviceRecord routed(std::uint64_t index, int jump, std::uint64_t bridge,
                    int quality_sum, int min_quality, int mobility = 0) {
  DeviceRecord record;
  record.device.mac = MacAddress::from_index(index);
  record.jump = jump;
  record.bridge = MacAddress::from_index(bridge);
  record.quality_sum = quality_sum;
  record.min_link_quality = min_quality;
  record.route_mobility = mobility;
  return record;
}

TEST(DeviceStorage, InsertAndFind) {
  DeviceStorage storage;
  EXPECT_TRUE(storage.upsert(direct(1, 250)));
  EXPECT_EQ(storage.size(), 1u);
  const auto found = storage.find(MacAddress::from_index(1));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->quality_sum, 250);
  EXPECT_TRUE(found->is_direct());
  EXPECT_FALSE(storage.find(MacAddress::from_index(2)).has_value());
}

TEST(DeviceStorage, SameRouteAlwaysRefreshes) {
  DeviceStorage storage;
  DeviceRecord first = direct(1, 250);
  first.last_seen = at(10.0);
  storage.upsert(first);
  // Same route, *lower* quality: must still refresh (liveness update).
  DeviceRecord second = direct(1, 200);
  second.last_seen = at(20.0);
  EXPECT_TRUE(storage.upsert(second));
  const auto found = storage.find(MacAddress::from_index(1));
  EXPECT_EQ(found->quality_sum, 200);
  EXPECT_EQ(found->last_seen, at(20.0));
}

TEST(DeviceStorage, DirectBeatsRouted) {
  DeviceStorage storage;
  storage.upsert(routed(1, 2, 9, 700, 240));
  EXPECT_TRUE(storage.upsert(direct(1, 231)));
  EXPECT_TRUE(storage.find(MacAddress::from_index(1))->is_direct());
}

TEST(DeviceStorage, WorseRouteRejectedButRefreshesLiveness) {
  DeviceStorage storage;
  DeviceRecord good = routed(1, 1, 9, 480, 240);
  good.last_seen = at(5.0);
  storage.upsert(good);
  DeviceRecord worse = routed(1, 3, 8, 900, 235);
  worse.last_seen = at(50.0);
  EXPECT_FALSE(storage.upsert(worse));
  const auto found = storage.find(MacAddress::from_index(1));
  EXPECT_EQ(found->jump, 1);
  EXPECT_EQ(found->last_seen, at(50.0)) << "liveness must still refresh";
}

TEST(DeviceStorage, MaxJumpCeilingEnforced) {
  RoutePolicy policy;
  policy.max_jumps = 3;
  DeviceStorage storage{policy};
  EXPECT_FALSE(storage.upsert(routed(1, 4, 9, 999, 240)));
  EXPECT_TRUE(storage.upsert(routed(1, 3, 9, 900, 240)));
}

TEST(DeviceStorage, SnapshotAndDirectNeighbours) {
  DeviceStorage storage;
  storage.upsert(direct(1, 250));
  storage.upsert(direct(2, 240));
  storage.upsert(routed(3, 1, 1, 480, 235));
  EXPECT_EQ(storage.snapshot().size(), 3u);
  EXPECT_EQ(storage.direct_neighbours().size(), 2u);
}

TEST(DeviceStorage, ProvidersOf) {
  DeviceStorage storage;
  DeviceRecord a = direct(1, 250);
  a.services = {{"echo", "", 1}, {"compute", "", 2}};
  DeviceRecord b = routed(2, 1, 1, 480, 235);
  b.services = {{"compute", "", 2}};
  storage.upsert(a);
  storage.upsert(b);
  EXPECT_EQ(storage.providers_of("compute").size(), 2u);
  EXPECT_EQ(storage.providers_of("echo").size(), 1u);
  EXPECT_TRUE(storage.providers_of("nope").empty());
}

TEST(DeviceStorage, AgeDirectDropsAfterMaxMissed) {
  DeviceStorage storage;
  storage.upsert(direct(1, 250));
  storage.upsert(direct(2, 250));
  // Device 2 responds, device 1 does not.
  const std::vector<MacAddress> responders{MacAddress::from_index(2)};
  EXPECT_TRUE(storage.age_direct(Technology::kBluetooth, responders, 2,
                                 at(10.0)).empty());
  EXPECT_TRUE(storage.age_direct(Technology::kBluetooth, responders, 2,
                                 at(20.0)).empty());
  const auto removed = storage.age_direct(Technology::kBluetooth, responders,
                                          2, at(30.0));
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], MacAddress::from_index(1));
  EXPECT_FALSE(storage.contains(MacAddress::from_index(1)));
  EXPECT_TRUE(storage.contains(MacAddress::from_index(2)));
}

TEST(DeviceStorage, RespondingResetsAge) {
  DeviceStorage storage;
  storage.upsert(direct(1, 250));
  const std::vector<MacAddress> nobody{};
  const std::vector<MacAddress> one{MacAddress::from_index(1)};
  (void)storage.age_direct(Technology::kBluetooth, nobody, 2, at(10.0));
  (void)storage.age_direct(Technology::kBluetooth, nobody, 2, at(20.0));
  (void)storage.age_direct(Technology::kBluetooth, one, 2, at(30.0));
  // Counter reset; two more misses still below the limit.
  (void)storage.age_direct(Technology::kBluetooth, nobody, 2, at(40.0));
  (void)storage.age_direct(Technology::kBluetooth, nobody, 2, at(50.0));
  EXPECT_TRUE(storage.contains(MacAddress::from_index(1)));
}

TEST(DeviceStorage, AgingCascadesToRoutes) {
  DeviceStorage storage;
  storage.upsert(direct(1, 250));
  storage.upsert(routed(5, 1, 1, 480, 235));  // via device 1
  const std::vector<MacAddress> nobody{};
  (void)storage.age_direct(Technology::kBluetooth, nobody, 0, at(10.0));
  EXPECT_FALSE(storage.contains(MacAddress::from_index(1)));
  EXPECT_FALSE(storage.contains(MacAddress::from_index(5)))
      << "routes through a vanished bridge must disappear";
}

TEST(DeviceStorage, AgeIsPerTechnology) {
  DeviceStorage storage;
  storage.upsert(direct(1, 250, MobilityClass::kStatic, Technology::kWlan));
  const std::vector<MacAddress> nobody{};
  (void)storage.age_direct(Technology::kBluetooth, nobody, 0, at(10.0));
  EXPECT_TRUE(storage.contains(MacAddress::from_index(1)))
      << "bluetooth aging must not touch wlan records";
}

TEST(DeviceStorage, ReconcileBridgeDropsStaleRoutes) {
  DeviceStorage storage;
  storage.upsert(direct(1, 250));
  storage.upsert(routed(5, 1, 1, 480, 235));
  storage.upsert(routed(6, 1, 1, 470, 235));
  // Bridge 1 now only advertises device 5.
  storage.reconcile_bridge(MacAddress::from_index(1),
                           {MacAddress::from_index(5)});
  EXPECT_TRUE(storage.contains(MacAddress::from_index(5)));
  EXPECT_FALSE(storage.contains(MacAddress::from_index(6)));
  EXPECT_TRUE(storage.contains(MacAddress::from_index(1)))
      << "the direct record of the bridge itself is untouched";
}

TEST(DeviceStorage, RemoveRoutesVia) {
  DeviceStorage storage;
  storage.upsert(routed(5, 1, 1, 480, 235));
  storage.upsert(routed(6, 2, 2, 700, 235));
  storage.remove_routes_via(MacAddress::from_index(1));
  EXPECT_FALSE(storage.contains(MacAddress::from_index(5)));
  EXPECT_TRUE(storage.contains(MacAddress::from_index(6)));
}

TEST(DeviceRecord, ServiceLookup) {
  DeviceRecord record = direct(1, 250);
  record.services = {{"echo", "", 1}};
  EXPECT_TRUE(record.provides("echo"));
  EXPECT_FALSE(record.provides("other"));
  const auto svc = record.find_service("echo");
  ASSERT_TRUE(svc.has_value());
  EXPECT_EQ(svc->port, 1);
}

}  // namespace
}  // namespace peerhood
