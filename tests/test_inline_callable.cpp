#include "sim/inline_callable.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

namespace peerhood::sim {
namespace {

TEST(InlineCallable, DefaultIsEmpty) {
  InlineCallable c;
  EXPECT_FALSE(static_cast<bool>(c));
  EXPECT_FALSE(c.heap_allocated());
}

TEST(InlineCallable, SmallCaptureStaysInline) {
  int hits = 0;
  InlineCallable c{[&hits] { ++hits; }};
  ASSERT_TRUE(static_cast<bool>(c));
  EXPECT_FALSE(c.heap_allocated());
  c();
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallable, CaptureAtTheInlineBoundaryStaysInline) {
  // Exactly kInlineSize bytes of capture must still be stored inline.
  constexpr std::size_t kFill = InlineCallable::kInlineSize - sizeof(void*);
  std::array<std::uint8_t, kFill> payload{};
  payload.fill(7);
  std::uint32_t sum = 0;
  auto fn = [payload, &sum] {
    for (const auto b : payload) sum += b;
  };
  static_assert(sizeof(fn) == InlineCallable::kInlineSize);
  InlineCallable c{std::move(fn)};
  EXPECT_FALSE(c.heap_allocated());
  c();
  EXPECT_EQ(sum, 7u * kFill);
}

TEST(InlineCallable, OversizedCaptureFallsBackToHeap) {
  std::array<std::uint8_t, InlineCallable::kInlineSize + 16> payload{};
  payload.fill(3);
  std::uint32_t sum = 0;
  InlineCallable c{[payload, &sum] {
    for (const auto b : payload) sum += b;
  }};
  EXPECT_TRUE(c.heap_allocated());
  c();
  EXPECT_EQ(sum, 3u * (InlineCallable::kInlineSize + 16));
}

TEST(InlineCallable, MoveOnlyCaptureWorks) {
  // std::function would reject this (it requires copyable callables).
  auto value = std::make_unique<int>(41);
  int seen = 0;
  InlineCallable c{[value = std::move(value), &seen] { seen = *value + 1; }};
  c();
  EXPECT_EQ(seen, 42);
}

TEST(InlineCallable, MoveConstructionTransfersAndEmptiesSource) {
  int hits = 0;
  InlineCallable a{[&hits] { ++hits; }};
  InlineCallable b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallable, MoveAssignmentDestroysPreviousTarget) {
  auto tracker = std::make_shared<int>(0);
  InlineCallable a{[tracker] { (void)tracker; }};
  EXPECT_EQ(tracker.use_count(), 2);
  int hits = 0;
  InlineCallable b{[&hits] { ++hits; }};
  a = std::move(b);
  // The old capture (and its shared_ptr) must be gone...
  EXPECT_EQ(tracker.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  // ...and the new one must have moved in intact.
  a();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallable, MoveTransfersHeapTargetWithoutReallocating) {
  std::array<std::uint8_t, 128> payload{};
  payload.fill(1);
  auto tracker = std::make_shared<int>(0);
  std::uint32_t sum = 0;
  InlineCallable a{[payload, tracker, &sum] {
    (void)tracker;
    for (const auto b : payload) sum += b;
  }};
  ASSERT_TRUE(a.heap_allocated());
  EXPECT_EQ(tracker.use_count(), 2);
  InlineCallable b{std::move(a)};
  // Heap target moved by pointer: no extra capture copies were made.
  EXPECT_EQ(tracker.use_count(), 2);
  EXPECT_TRUE(b.heap_allocated());
  b();
  EXPECT_EQ(sum, 128u);
}

TEST(InlineCallable, ResetDestroysCapture) {
  auto tracker = std::make_shared<int>(0);
  InlineCallable c{[tracker] { (void)tracker; }};
  EXPECT_EQ(tracker.use_count(), 2);
  c.reset();
  EXPECT_EQ(tracker.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(c));
}

TEST(InlineCallable, DestructorDestroysCapture) {
  auto tracker = std::make_shared<int>(0);
  {
    InlineCallable c{[tracker] { (void)tracker; }};
    EXPECT_EQ(tracker.use_count(), 2);
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(InlineCallable, SelfMoveAssignmentIsSafe) {
  int hits = 0;
  InlineCallable c{[&hits] { ++hits; }};
  InlineCallable& alias = c;
  c = std::move(alias);
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace peerhood::sim
