#include "baseline/gnutella.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace peerhood::baseline {
namespace {

MacAddress mac(std::uint64_t i) { return MacAddress::from_index(i); }

GnutellaOverlay::Adjacency line(int n) {
  GnutellaOverlay::Adjacency adj;
  for (int i = 0; i < n; ++i) {
    auto& neighbours = adj[mac(static_cast<std::uint64_t>(i))];
    if (i > 0) neighbours.push_back(mac(static_cast<std::uint64_t>(i - 1)));
    if (i + 1 < n) neighbours.push_back(mac(static_cast<std::uint64_t>(i + 1)));
  }
  return adj;
}

GnutellaOverlay::Adjacency complete(int n) {
  GnutellaOverlay::Adjacency adj;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) {
        adj[mac(static_cast<std::uint64_t>(i))].push_back(
            mac(static_cast<std::uint64_t>(j)));
      }
    }
  }
  return adj;
}

TEST(Gnutella, LineSearchFindsTarget) {
  GnutellaOverlay overlay{line(6)};
  const auto result = overlay.search(mac(0), mac(5), 7);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.hops_to_target, 5);
  // On a line each hop is one message: 5 messages to reach node 5.
  EXPECT_EQ(result.query_messages, 5u);
}

TEST(Gnutella, TtlLimitsReach) {
  GnutellaOverlay overlay{line(10)};
  const auto result = overlay.search(mac(0), mac(9), 4);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.nodes_reached, 5u);  // origin + 4 hops
}

TEST(Gnutella, CompleteGraphExplodes) {
  // Flooding a complete graph duplicates queries massively — the §3.2
  // scaling problem.
  GnutellaOverlay overlay{complete(8)};
  const auto result = overlay.search(mac(0), mac(7), 3);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.hops_to_target, 1);
  // First wave: 7 messages; second wave: 7 nodes x 6 forwards = 42; ...
  EXPECT_GE(result.query_messages, 7u + 42u);
}

TEST(Gnutella, MessagesGrowFasterThanNodesOnDenseGraphs) {
  const auto msgs_for = [](int n) {
    GnutellaOverlay overlay{complete(n)};
    return overlay.search(mac(0), mac(1), 2).query_messages;
  };
  const auto m8 = msgs_for(8);
  const auto m16 = msgs_for(16);
  EXPECT_GT(m16, 3 * m8) << "super-linear traffic growth";
}

TEST(Gnutella, FloodMessagesMatchesSearchPattern) {
  GnutellaOverlay overlay{line(5)};
  EXPECT_EQ(overlay.flood_messages(mac(0), 7), 4u);
}

TEST(Gnutella, UnknownOriginIsEmptyResult) {
  GnutellaOverlay overlay{line(3)};
  const auto result = overlay.search(mac(99), mac(1), 7);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.query_messages, 0u);
}

TEST(Gnutella, FromMediumUsesRadioRange) {
  sim::Simulator sim{5};
  sim::RadioMedium medium{sim};
  std::vector<MacAddress> nodes;
  for (int i = 0; i < 4; ++i) {
    const MacAddress m = mac(static_cast<std::uint64_t>(i));
    medium.register_endpoint(
        m, Technology::kBluetooth,
        std::make_shared<sim::StaticPosition>(sim::Vec2{8.0 * i, 0.0}),
        nullptr);
    nodes.push_back(m);
  }
  const auto overlay =
      GnutellaOverlay::from_medium(medium, nodes, Technology::kBluetooth);
  EXPECT_EQ(overlay.node_count(), 4u);
  EXPECT_EQ(overlay.edge_count(), 3u);  // chain edges only
  const auto result = overlay.search(mac(0), mac(3), 7);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.hops_to_target, 3);
}

TEST(Gnutella, EdgeCountHalvesDegreeSum) {
  GnutellaOverlay overlay{complete(6)};
  EXPECT_EQ(overlay.edge_count(), 15u);
}

}  // namespace
}  // namespace peerhood::baseline
