// Teardown / ownership regression net (PR 3). Every scenario here ends with
// live session objects destroyed at an "interesting" phase — mid-handshake,
// mid-transfer, mid-handover, with frames in flight or retries pending — and
// the CI sanitize job runs this binary with LeakSanitizer fully on
// (`detect_leaks=1`, no suppressions): a reintroduced handler reference
// cycle or a callback that outlives its owner fails the job, not just the
// explicit EXPECTs below.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "handover/handover.hpp"
#include "net/posix_network.hpp"
#include "migration/task_client.hpp"
#include "migration/task_server.hpp"
#include "peerhood/reliable_channel.hpp"
#include "scenario_util.hpp"

namespace peerhood {
namespace {

using handover::HandoverController;
using migration::MigrationOutcome;
using migration::TaskClient;
using migration::TaskClientConfig;
using migration::TaskServer;
using migration::TaskServerConfig;
using node::Testbed;
using testing::fast_node;
using testing::reliable_bluetooth;

// A tracked capture: tests hand these to handlers and then assert (through
// the weak reference) that severing the handler released the capture.
struct Tracker {
  std::shared_ptr<int> strong = std::make_shared<int>(0);
  std::weak_ptr<int> weak = strong;

  // Keep only the handler's copy alive.
  void drop_local() { strong.reset(); }
  [[nodiscard]] bool released() const { return weak.expired(); }
};

// Two nodes in range with a connected "echo"-less session; the fixture keeps
// the server-side channels alive in an explicit registry.
class TeardownTest : public ::testing::Test {
 protected:
  void build(std::uint64_t seed) {
    testbed_ = std::make_unique<Testbed>(seed);
    testbed_->medium().configure(reliable_bluetooth());
    client_ = &testbed_->add_node("client", {0.0, 0.0},
                                  fast_node(MobilityClass::kDynamic));
    server_ = &testbed_->add_node("server", {5.0, 0.0},
                                  fast_node(MobilityClass::kStatic));
    (void)server_->library().register_service(
        ServiceInfo{"sink", "", 0},
        [this](ChannelPtr channel, const wire::ConnectRequest&) {
          server_channels_.push_back(std::move(channel));
        });
    testbed_->run_discovery_rounds(3);
  }

  ChannelPtr connect() {
    auto result = client_->connect_blocking(server_->mac(), "sink");
    EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().to_string());
    return result.ok() ? result.value() : nullptr;
  }

  std::unique_ptr<Testbed> testbed_;
  node::Node* client_{nullptr};
  node::Node* server_{nullptr};
  std::vector<ChannelPtr> server_channels_;
};

TEST_F(TeardownTest, ChannelCloseSeversHandlersImmediately) {
  build(1);
  const ChannelPtr channel = connect();
  ASSERT_NE(channel, nullptr);

  Tracker data_capture;
  Tracker close_capture;
  Tracker handover_capture;
  channel->set_data_handler([keep = data_capture.strong](const Bytes&) {});
  channel->set_close_handler([keep = close_capture.strong] {});
  channel->set_handover_handler(
      [keep = handover_capture.strong](const net::ConnectionPtr&) {});
  data_capture.drop_local();
  close_capture.drop_local();
  handover_capture.drop_local();
  ASSERT_FALSE(data_capture.released());

  channel->close();
  // Severing is synchronous: the captures are gone before any event runs.
  EXPECT_TRUE(data_capture.released());
  EXPECT_TRUE(close_capture.released());
  EXPECT_TRUE(handover_capture.released());
  EXPECT_TRUE(channel->closed());
  EXPECT_FALSE(channel->open());

  // A closed channel silently refuses new handlers instead of re-arming.
  Tracker late;
  channel->set_data_handler([keep = late.strong](const Bytes&) {});
  late.drop_local();
  EXPECT_TRUE(late.released());

  // close() is idempotent, from any side, any number of times.
  channel->close();
  EXPECT_TRUE(channel->closed());
}

TEST_F(TeardownTest, CloseHandlerFiresAtMostOnce) {
  build(2);
  const ChannelPtr channel = connect();
  ASSERT_NE(channel, nullptr);
  ASSERT_EQ(server_channels_.size(), 1u);

  int client_loss_reports = 0;
  channel->set_close_handler([&] {
    ++client_loss_reports;
    // Reentrant endpoint-side close from inside the transport-loss callback:
    // must not re-fire the handler or crash.
    channel->close();
  });

  // Transport side: the server endpoint closes; the client's keepalive and
  // the peer close frame both observe the death.
  server_channels_.front()->close();
  testbed_->run_for(5.0);
  EXPECT_EQ(client_loss_reports, 1);
  EXPECT_TRUE(channel->closed());
}

TEST_F(TeardownTest, CloseFromInsideDataHandlerMidTrain) {
  build(3);
  const ChannelPtr channel = connect();
  ASSERT_NE(channel, nullptr);
  ASSERT_EQ(server_channels_.size(), 1u);

  // The server sends a train of frames; the client closes the channel from
  // inside the first delivery. The remaining in-flight frames must land
  // harmlessly (connection closed, frames dropped), not crash or leak.
  int delivered = 0;
  channel->set_data_handler([&](const Bytes&) {
    ++delivered;
    channel->close();
  });
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server_channels_.front()->write(Bytes{std::uint8_t(i)}).ok());
  }
  testbed_->run_for(5.0);
  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(channel->closed());
}

TEST_F(TeardownTest, TeardownWithUndeliveredRxFrames) {
  build(4);
  const ChannelPtr channel = connect();
  ASSERT_NE(channel, nullptr);
  // Frames pile up in the connection's rx queue (no data handler installed)
  // and more are still in flight when everything is destroyed.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(server_channels_.front()->write(Bytes(64, 0x5A)).ok());
  }
  testbed_->run_for(0.01);  // some delivered into rx, some still in flight
  // Destroy in awkward order: server channels first, then the testbed with
  // the client channel still open. LSan asserts nothing survives.
  server_channels_.clear();
  testbed_.reset();
  EXPECT_FALSE(channel->open());
}

TEST_F(TeardownTest, ReliableLayerDetachesOnDestruction) {
  build(5);
  const ChannelPtr channel = connect();
  ASSERT_NE(channel, nullptr);
  ASSERT_EQ(server_channels_.size(), 1u);

  auto reliable = std::make_unique<ReliableChannel>(testbed_->sim(), channel);
  ASSERT_TRUE(reliable->send(Bytes{1, 2, 3}).ok());
  // Destroy the reliability layer with unacked frames outstanding, then let
  // the peer keep talking on the raw channel: the dead layer's raw-`this`
  // handlers must be gone.
  reliable.reset();
  int raw_frames = 0;
  channel->set_data_handler([&](const Bytes&) { ++raw_frames; });
  ASSERT_TRUE(server_channels_.front()->write(Bytes{9}).ok());
  testbed_->run_for(5.0);
  EXPECT_EQ(raw_frames, 1);
}

TEST_F(TeardownTest, EngineStopClosesPendingHandshakes) {
  build(6);
  // Open a transport connection to the engine but never send the handshake
  // frame, then stop the engine: the pending connection must be severed and
  // closed, not parked forever.
  net::ConnectionPtr half_open;
  testbed_->network().connect(
      client_->mac(),
      net::NetAddress{server_->mac(), Technology::kBluetooth,
                      net::kPeerHoodEnginePort},
      [&](Result<net::ConnectionPtr> result) {
        if (result.ok()) half_open = std::move(result).value();
      });
  testbed_->run_for(10.0);
  ASSERT_NE(half_open, nullptr);
  ASSERT_TRUE(half_open->open());

  bool closed = false;
  half_open->set_close_handler([&] { closed = true; });
  server_->daemon().engine().stop();
  testbed_->run_for(5.0);
  EXPECT_TRUE(closed);
  EXPECT_FALSE(half_open->open());
}

TEST_F(TeardownTest, DialTimeoutReleasesHalfOpenConnection) {
  build(7);
  // A listener that accepts and never acknowledges: the library dial must
  // time out AND release the half-open connection (pre-PR 3 the handlers
  // stayed installed, pinning the connection in a cycle).
  server_->daemon().engine().stop();
  std::vector<net::ConnectionPtr> parked;
  const net::NetAddress engine_addr{server_->mac(), Technology::kBluetooth,
                                    net::kPeerHoodEnginePort};
  ASSERT_TRUE(testbed_->network()
                  .listen(engine_addr,
                          [&](net::ConnectionPtr conn) {
                            parked.push_back(std::move(conn));
                          })
                  .ok());

  Library::ConnectOptions options;
  options.timeout = seconds(10.0);
  Result<ChannelPtr> outcome = Error{ErrorCode::kCancelled, "pending"};
  client_->library().connect(server_->mac(), "sink", options,
                             [&](Result<ChannelPtr> result) {
                               outcome = std::move(result);
                             });
  testbed_->run_for(30.0);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kTimeout);
  // The abandoned dial closed its half-open connection; the parked server
  // end observed it.
  ASSERT_EQ(parked.size(), 1u);
  EXPECT_FALSE(parked.front()->open());
}

TEST_F(TeardownTest, CloseHandlerRearmsAcrossSubstitution) {
  build(8);
  const ChannelPtr channel = connect();
  ASSERT_NE(channel, nullptr);
  ASSERT_EQ(server_channels_.size(), 1u);

  int losses = 0;
  channel->set_close_handler([&] { ++losses; });
  server_channels_.front()->close();  // first transport dies
  testbed_->run_for(5.0);
  EXPECT_EQ(losses, 1);
  EXPECT_FALSE(channel->closed()) << "a transport loss is not a session end";

  // Substitute a fresh raw transport (what resume_via_bridge does), then
  // kill it too: the new transport's death is a new loss and must be
  // reported again — fires-at-most-once is per transport, not per channel.
  const net::NetAddress addr{server_->mac(), Technology::kBluetooth, 999};
  net::ConnectionPtr server_end;
  net::ConnectionPtr client_end;
  ASSERT_TRUE(testbed_->network()
                  .listen(addr,
                          [&](net::ConnectionPtr conn) {
                            server_end = std::move(conn);
                          })
                  .ok());
  testbed_->network().connect(client_->mac(), addr,
                              [&](Result<net::ConnectionPtr> result) {
                                if (result.ok()) {
                                  client_end = std::move(result).value();
                                }
                              });
  testbed_->run_for(10.0);
  ASSERT_NE(server_end, nullptr);
  ASSERT_NE(client_end, nullptr);

  channel->replace_connection(client_end);
  EXPECT_TRUE(channel->open());
  server_end->close();  // second transport dies
  testbed_->run_for(5.0);
  EXPECT_EQ(losses, 2);
}

TEST_F(TeardownTest, RxDrainSurvivesHandlerDroppingLastReference) {
  build(9);
  // Raw transport pair (no channel wrapping it): the client end's only
  // strong reference is the local holder below.
  const net::NetAddress addr{server_->mac(), Technology::kBluetooth, 998};
  net::ConnectionPtr server_end;
  net::ConnectionPtr client_end;
  ASSERT_TRUE(testbed_->network()
                  .listen(addr,
                          [&](net::ConnectionPtr conn) {
                            server_end = std::move(conn);
                          })
                  .ok());
  testbed_->network().connect(client_->mac(), addr,
                              [&](Result<net::ConnectionPtr> result) {
                                if (result.ok()) {
                                  client_end = std::move(result).value();
                                }
                              });
  testbed_->run_for(10.0);
  ASSERT_NE(client_end, nullptr);

  // Buffer several frames with no handler armed...
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(server_end->write(Bytes{std::uint8_t(i)}).ok());
  }
  testbed_->run_for(5.0);
  // ...then install a handler that destroys the connection from inside the
  // drain: the loop must stop without touching the freed object (ASan
  // guards the assert) and the undrained tail dies with the connection.
  int seen = 0;
  client_end->set_data_handler([&](const Bytes&) {
    ++seen;
    client_end.reset();
  });
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(client_end, nullptr);
  testbed_->run_for(5.0);  // the RAII close propagates to the server end
  EXPECT_FALSE(server_end->open());
}

TEST(TeardownScenario, BridgeChainMidTransfer) {
  // a - b - c chain relaying traffic; everything is destroyed with relay
  // frames in flight and the bridge pair still established. LSan owns the
  // assert: the relay handlers must not pin the connection pair.
  auto testbed = std::make_unique<Testbed>(20);
  testbed->medium().configure(reliable_bluetooth());
  auto& a = testbed->add_node("a", {0.0, 0.0},
                              fast_node(MobilityClass::kDynamic));
  testbed->add_node("b", {8.0, 0.0}, fast_node(MobilityClass::kStatic));
  auto& c = testbed->add_node("c", {16.0, 0.0},
                              fast_node(MobilityClass::kStatic));
  std::vector<ChannelPtr> server_sessions;
  int echoed = 0;
  (void)c.library().register_service(
      ServiceInfo{"echo", "", 0},
      [&](ChannelPtr channel, const wire::ConnectRequest&) {
        server_sessions.push_back(channel);
        channel->set_data_handler([raw = channel.get()](const Bytes& frame) {
          (void)raw->write(frame);
        });
      });
  testbed->run_discovery_rounds(6);

  auto result = a.connect_blocking(c.mac(), "echo", {}, 300.0);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const ChannelPtr channel = result.value();
  channel->set_data_handler([&](const Bytes&) { ++echoed; });
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(channel->write(Bytes(32, 0x11)).ok());
  }
  // A tick long enough for some frames to cross b but not the full round
  // trip of all of them — guaranteed in-flight traffic at teardown.
  testbed->run_for(0.05);
  testbed.reset();
  EXPECT_FALSE(channel->open());
  EXPECT_LT(echoed, 6);
}

TEST(TeardownScenario, ControllerDestroyedMidHandover) {
  // The handover controller dies while its resume-via-bridge dial is in
  // flight; the simulation keeps running long enough for the dial to
  // resolve against the destroyed controller (token guard, not UAF).
  Testbed testbed{21};
  testbed.medium().configure(reliable_bluetooth());
  auto& a = testbed.add_node("a", {0.0, 0.0},
                             fast_node(MobilityClass::kDynamic));
  auto& s = testbed.add_node("s", {4.0, 0.0},
                             fast_node(MobilityClass::kStatic));
  testbed.add_node("c", {2.0, 3.0}, fast_node(MobilityClass::kStatic));
  std::vector<ChannelPtr> server_sessions;
  (void)s.library().register_service(
      ServiceInfo{"print", "", 0},
      [&](ChannelPtr channel, const wire::ConnectRequest&) {
        server_sessions.push_back(std::move(channel));
      });
  testbed.run_discovery_rounds(4);

  auto result = a.connect_blocking(s.mac(), "print");
  ASSERT_TRUE(result.ok());
  const ChannelPtr channel = result.value();
  const double t0 = testbed.sim().now().seconds();
  channel->connection()->set_quality_override([t0](SimTime now) {
    return static_cast<int>(250.0 - (now.seconds() - t0));
  });

  auto controller =
      std::make_unique<HandoverController>(a.library(), channel, handover::HandoverConfig{});
  controller->start();
  // Run until the degradation fires and a route attempt is in flight but
  // not yet resolved (bridge dialing takes a couple of simulated seconds).
  const bool attempting = testing::run_until(
      testbed,
      [&] {
        return controller->stats().route_attempts >= 1 &&
               controller->stats().handovers == 0;
      },
      60.0);
  ASSERT_TRUE(attempting);
  controller.reset();
  testbed.run_for(60.0);  // resume resolves against the dead controller
  SUCCEED();
}

TEST(TeardownScenario, ControllerDestroyedFromInsideItsOwnEventHandler) {
  // The documented contract (handler_slot.hpp rule 3): an event handler may
  // destroy the controller outright — here from inside the monitor tick,
  // which exercises PeriodicTask's destroy-mid-tick tolerance as well as
  // emit()'s return-false protocol.
  Testbed testbed{24};
  testbed.medium().configure(reliable_bluetooth());
  auto& a = testbed.add_node("a", {0.0, 0.0},
                             fast_node(MobilityClass::kDynamic));
  auto& s = testbed.add_node("s", {4.0, 0.0},
                             fast_node(MobilityClass::kStatic));
  testbed.add_node("c", {2.0, 3.0}, fast_node(MobilityClass::kStatic));
  std::vector<ChannelPtr> server_sessions;
  (void)s.library().register_service(
      ServiceInfo{"print", "", 0},
      [&](ChannelPtr channel, const wire::ConnectRequest&) {
        server_sessions.push_back(std::move(channel));
      });
  testbed.run_discovery_rounds(4);

  auto result = a.connect_blocking(s.mac(), "print");
  ASSERT_TRUE(result.ok());
  const ChannelPtr channel = result.value();
  const double t0 = testbed.sim().now().seconds();
  channel->connection()->set_quality_override([t0](SimTime now) {
    return static_cast<int>(250.0 - (now.seconds() - t0));
  });

  auto controller = std::make_unique<HandoverController>(
      a.library(), channel, handover::HandoverConfig{});
  controller->set_event_handler([&](const handover::HandoverEvent& event) {
    if (event.kind == handover::HandoverEvent::Kind::kDegradationDetected) {
      controller.reset();  // destroy the controller from inside its tick
    }
  });
  controller->start();
  testbed.run_for(60.0);
  EXPECT_EQ(controller, nullptr);
}

TEST(TeardownScenario, MigrationActorsDestroyedMidFlight) {
  // TaskClient destroyed mid-upload, TaskServer destroyed while its
  // result-routing retry chain is still pending; the world keeps running.
  Testbed testbed{22};
  testbed.medium().configure(reliable_bluetooth());
  auto& server = testbed.add_node("server", {5.0, 0.0},
                                  fast_node(MobilityClass::kStatic));
  auto& client = testbed.add_node("client", {0.0, 0.0},
                                  fast_node(MobilityClass::kDynamic));
  TaskServerConfig server_config;
  server_config.result_routing.retry_base = seconds(5.0);
  auto task_server = std::make_unique<TaskServer>(server.library(),
                                                  server_config);
  task_server->start();
  testbed.run_discovery_rounds(3);

  TaskClientConfig config;
  config.spec.package_count = 50;
  config.spec.send_interval = seconds(1.0);
  config.spec.per_package_processing = milliseconds(100);
  auto task_client = std::make_unique<TaskClient>(
      client.library(), server.mac(), "picture.analyse", config);
  bool done = false;
  task_client->run([&](const MigrationOutcome&) { done = true; });
  testbed.run_for(10.0);  // mid-upload
  ASSERT_FALSE(done);
  task_client.reset();

  // The server session is now stuck; let its timeout/result path churn,
  // then kill the server too and keep the simulator running.
  testbed.run_for(30.0);
  task_server.reset();
  testbed.run_for(60.0);
  SUCCEED();
}

TEST(TeardownScenario, TestbedDestroyedMidHandshake) {
  // Connection accepted by the engine, handshake frame still in flight.
  auto testbed = std::make_unique<Testbed>(23);
  testbed->medium().configure(reliable_bluetooth());
  auto& a = testbed->add_node("a", {0.0, 0.0},
                              fast_node(MobilityClass::kDynamic));
  auto& b = testbed->add_node("b", {5.0, 0.0},
                              fast_node(MobilityClass::kStatic));
  std::vector<ChannelPtr> sessions;
  (void)b.library().register_service(
      ServiceInfo{"svc", "", 0},
      [&](ChannelPtr channel, const wire::ConnectRequest&) {
        sessions.push_back(std::move(channel));
      });
  testbed->run_discovery_rounds(3);

  bool resolved = false;
  a.library().connect(b.mac(), "svc", {},
                      [&](Result<ChannelPtr>) { resolved = true; });
  // Run into the establishment window (connect delay is 0.5-1.0 s): the
  // PH_CONNECT frame is in flight or freshly pending at the engine.
  testbed->run_for(0.9);
  testbed.reset();
  (void)resolved;  // either way — the point is leak-free teardown
  SUCCEED();
}

// --- Quality-observer lifecycle (PR 5) ---------------------------------------
// The predictive engine subscribes a quality observer on the medium; its
// callbacks follow the HandlerSlot rules: pin-before-call dispatch, an
// idempotent unsubscribe, and destruction of the subscribed controller from
// inside its own event chain must be safe.

namespace observer_teardown {

// Corridor walk whose client starts next to the server and leaves at 0.75
// m/s after `departure_s` — enough time for discovery and the connect.
struct Walkout {
  Walkout(std::uint64_t seed, double departure_s) : testbed{seed} {
    testbed.medium().configure(reliable_bluetooth());
    server = &testbed.add_node("server", {0.0, 0.0},
                               fast_node(MobilityClass::kStatic));
    testbed.add_node("bridge", {8.0, 0.0}, fast_node(MobilityClass::kStatic));
    client = &testbed.add_mobile_node(
        "client",
        std::make_shared<sim::LinearMotion>(
            sim::Vec2{2.0, 0.0}, sim::Vec2{0.75, 0.0},
            SimTime{} + seconds(departure_s)),
        fast_node(MobilityClass::kDynamic));
    (void)server->library().register_service(
        ServiceInfo{"sink", "", 0},
        [this](ChannelPtr channel, const wire::ConnectRequest&) {
          sessions.push_back(std::move(channel));
        });
    testbed.run_discovery_rounds(3);
  }

  Testbed testbed;
  node::Node* server{nullptr};
  node::Node* client{nullptr};
  std::vector<ChannelPtr> sessions;
};

TEST(QualityObserverTeardown, ControllerDestroyedFromInsideItsOwnEventChain) {
  Walkout walkout{91, 60.0};
  auto result = walkout.client->connect_blocking(walkout.server->mac(),
                                                 "sink");
  ASSERT_TRUE(result.ok());
  const ChannelPtr channel = result.value();

  auto controller = std::make_unique<HandoverController>(
      walkout.client->library(), channel, handover::HandoverConfig{});
  Tracker capture;
  controller->set_event_handler(
      [&controller, keep = capture.strong](const handover::HandoverEvent& e) {
        if (e.kind == handover::HandoverEvent::Kind::kPredictedLoss) {
          // Destroy the controller from inside the quality-event chain
          // (medium observer dispatch -> predictor -> app handler).
          controller.reset();
        }
      });
  capture.drop_local();
  controller->start();
  EXPECT_EQ(walkout.testbed.medium().quality_observer_count(), 1u);

  walkout.testbed.run_for(90.0);
  EXPECT_EQ(controller, nullptr) << "prediction should have fired";
  EXPECT_TRUE(capture.released());
  EXPECT_EQ(walkout.testbed.medium().quality_observer_count(), 0u);
  // The walk continues past the coverage edge with the observer slot
  // retired: no stale handler fires (ASan/LSan would flag it).
  walkout.testbed.run_for(30.0);
  SUCCEED();
}

TEST(QualityObserverTeardown, DestroyingArmedControllerDetachesObserver) {
  Walkout walkout{92, 60.0};
  auto result = walkout.client->connect_blocking(walkout.server->mac(),
                                                 "sink");
  ASSERT_TRUE(result.ok());
  const ChannelPtr channel = result.value();

  auto controller = std::make_unique<HandoverController>(
      walkout.client->library(), channel, handover::HandoverConfig{});
  controller->start();
  // Run until the observer pushed at least one crossing (predictor armed,
  // pre-dial possibly in flight), then destroy without stop(). The walk
  // departs at 60 s and crosses the arming threshold ~4 s later.
  walkout.testbed.sim().run_until(SimTime{} + seconds(65.0));
  EXPECT_GT(controller->stats().quality_events, 0u);
  controller.reset();
  EXPECT_EQ(walkout.testbed.medium().quality_observer_count(), 0u);
  // Whatever was in flight (resume dial, predictor tick) resolves against
  // the sentinel and the severed observer slot — leak- and UAF-free.
  walkout.testbed.run_for(60.0);
  SUCCEED();
}

TEST(QualityObserverTeardown, StopIsIdempotentAndReleasesObserver) {
  Walkout walkout{93, 200.0};
  auto result = walkout.client->connect_blocking(walkout.server->mac(),
                                                 "sink");
  ASSERT_TRUE(result.ok());
  HandoverController controller{walkout.client->library(), result.value(),
                                handover::HandoverConfig{}};
  controller.start();
  EXPECT_EQ(walkout.testbed.medium().quality_observer_count(), 1u);
  controller.stop();
  EXPECT_EQ(walkout.testbed.medium().quality_observer_count(), 0u);
  controller.stop();  // idempotent
  EXPECT_EQ(walkout.testbed.medium().quality_observer_count(), 0u);
}

}  // namespace observer_teardown

// --- Crash teardown (node crash plane) ---------------------------------------
// Node::crash() hard-kills a full stack at an "interesting" phase — with a
// handshake in flight, with unacked reliable frames outstanding, with a
// handover resume dialing through the crashed node — and the world keeps
// running, restarts, and tears down. ASan/LSan own the assert: the crash
// must sever every handler the dead stack installed, leak- and UAF-free.

namespace crash_teardown {

TEST(CrashTeardown, CrashMidHandshake) {
  auto testbed = std::make_unique<Testbed>(31);
  testbed->medium().configure(reliable_bluetooth());
  auto& a = testbed->add_node("a", {0.0, 0.0},
                              fast_node(MobilityClass::kDynamic));
  auto& b = testbed->add_node("b", {5.0, 0.0},
                              fast_node(MobilityClass::kStatic));
  std::vector<ChannelPtr> sessions;
  (void)b.library().register_service(
      ServiceInfo{"svc", "", 0},
      [&](ChannelPtr channel, const wire::ConnectRequest&) {
        sessions.push_back(std::move(channel));
      });
  testbed->run_discovery_rounds(3);

  bool resolved = false;
  a.library().connect(b.mac(), "svc", {},
                      [&](Result<ChannelPtr>) { resolved = true; });
  // Into the establishment window: the PH_CONNECT frame is in flight or
  // freshly pending at the engine when the responder dies.
  testbed->run_for(0.9);
  b.crash();
  testbed->run_for(90.0);  // dial retries exhaust against the dead node
  EXPECT_TRUE(resolved);
  b.restart();
  testbed->run_for(5.0);
  testbed.reset();
  SUCCEED();
}

TEST(CrashTeardown, CrashMidReliableTransfer) {
  auto testbed = std::make_unique<Testbed>(32);
  testbed->medium().configure(reliable_bluetooth());
  auto& a = testbed->add_node("a", {0.0, 0.0},
                              fast_node(MobilityClass::kDynamic));
  auto& b = testbed->add_node("b", {5.0, 0.0},
                              fast_node(MobilityClass::kStatic));
  std::vector<ChannelPtr> sessions;
  std::vector<std::unique_ptr<ReliableChannel>> server_layers;
  (void)b.library().register_service(
      ServiceInfo{"sink", "", 0},
      [&](ChannelPtr channel, const wire::ConnectRequest&) {
        server_layers.push_back(std::make_unique<ReliableChannel>(
            testbed->sim(), channel));
        sessions.push_back(std::move(channel));
      });
  testbed->run_discovery_rounds(3);

  auto result = a.connect_blocking(b.mac(), "sink");
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const ChannelPtr channel = result.value();
  auto reliable = std::make_unique<ReliableChannel>(testbed->sim(), channel);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(reliable->send(Bytes(32, 0x42)).ok());
  }
  testbed->run_for(0.05);  // frames (and acks) in flight both ways
  b.crash();
  // The client layer keeps probing the dead link (backed-off retransmits on
  // a closed transport) — harmlessly.
  testbed->run_for(20.0);
  EXPECT_GT(reliable->unacked(), 0u);
  b.restart();
  testbed->run_for(10.0);
  // Teardown with the unacked tail still buffered. Reliability layers go
  // before the testbed (they hold timers on its simulator — the same
  // member-order rule ScenarioRunner follows), channels in awkward order.
  reliable.reset();
  server_layers.clear();
  sessions.clear();
  testbed.reset();
  EXPECT_FALSE(channel->open());
}

TEST(CrashTeardown, CrashMidHandover) {
  // The resume-via-bridge dial is in flight *through* the node that
  // crashes; the dial must resolve against the dead relay (error, retry,
  // give-up) without touching freed state, and the controller survives to
  // be destroyed normally.
  Testbed testbed{33};
  testbed.medium().configure(reliable_bluetooth());
  auto& a = testbed.add_node("a", {0.0, 0.0},
                             fast_node(MobilityClass::kDynamic));
  auto& s = testbed.add_node("s", {4.0, 0.0},
                             fast_node(MobilityClass::kStatic));
  auto& c = testbed.add_node("c", {2.0, 3.0}, fast_node(MobilityClass::kStatic));
  std::vector<ChannelPtr> server_sessions;
  (void)s.library().register_service(
      ServiceInfo{"print", "", 0},
      [&](ChannelPtr channel, const wire::ConnectRequest&) {
        server_sessions.push_back(std::move(channel));
      });
  testbed.run_discovery_rounds(4);

  auto result = a.connect_blocking(s.mac(), "print");
  ASSERT_TRUE(result.ok());
  const ChannelPtr channel = result.value();
  const double t0 = testbed.sim().now().seconds();
  channel->connection()->set_quality_override([t0](SimTime now) {
    return static_cast<int>(250.0 - (now.seconds() - t0));
  });

  auto controller = std::make_unique<HandoverController>(
      a.library(), channel, handover::HandoverConfig{});
  controller->start();
  const bool attempting = testing::run_until(
      testbed,
      [&] {
        return controller->stats().route_attempts >= 1 &&
               controller->stats().handovers == 0;
      },
      60.0);
  ASSERT_TRUE(attempting);
  c.crash();  // the bridge being dialed dies mid-dial
  testbed.run_for(60.0);
  c.restart();
  testbed.run_for(30.0);
  controller.reset();
  SUCCEED();
}

TEST(CrashTeardown, CrashedNodeTornDownWhileStillDown) {
  // The testbed is destroyed with one node crashed (never restarted) and a
  // peer still holding a session to it: nothing the dead stack dropped may
  // survive, nothing the live stack holds may dangle.
  auto testbed = std::make_unique<Testbed>(34);
  testbed->medium().configure(reliable_bluetooth());
  auto& a = testbed->add_node("a", {0.0, 0.0},
                              fast_node(MobilityClass::kDynamic));
  auto& b = testbed->add_node("b", {5.0, 0.0},
                              fast_node(MobilityClass::kStatic));
  std::vector<ChannelPtr> sessions;
  (void)b.library().register_service(
      ServiceInfo{"svc", "", 0},
      [&](ChannelPtr channel, const wire::ConnectRequest&) {
        sessions.push_back(std::move(channel));
      });
  testbed->run_discovery_rounds(3);
  auto result = a.connect_blocking(b.mac(), "svc");
  ASSERT_TRUE(result.ok());
  const ChannelPtr channel = result.value();
  ASSERT_TRUE(channel->write(Bytes{1, 2, 3}).ok());
  testbed->run_for(0.01);  // frame in flight into the crash
  b.crash();
  EXPECT_TRUE(b.crashed());
  b.crash();  // idempotent
  testbed->run_for(2.0);
  testbed.reset();
  EXPECT_FALSE(channel->open());
}

}  // namespace crash_teardown

// --- PosixNetwork teardown (real sockets, LSan-audited) ----------------------
//
// The socket backend dies in messier ways than the simulator: file
// descriptors, kernel-buffered bytes and epoll registrations all outlive C++
// objects unless the destructor walks them down. Each case below destroys a
// PosixNetwork at an awkward phase; the sanitize job (ASan+LSan, UBSan)
// turns any leaked capture, fd-backed buffer or use-after-free into a
// failure even where the EXPECTs cannot see it.
namespace posix_teardown {

using net::ConnectionPtr;
using net::NetAddress;
using net::PosixConfig;
using net::PosixNetwork;

PosixConfig snappy_config(std::uint64_t index) {
  PosixConfig config;
  config.mac = MacAddress::from_index(index);
  config.seed = index;
  config.connect_timeout = milliseconds(100);
  config.connect_attempts = 3;
  config.connect_backoff_base = milliseconds(5);
  config.connect_backoff_cap = milliseconds(20);
  return config;
}

[[nodiscard]] bool pump_until(PosixNetwork& a, PosixNetwork& b,
                              const std::function<bool()>& done,
                              int deadline_ms = 3000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    a.poll_once(milliseconds(2));
    b.poll_once(milliseconds(2));
  }
  return done();
}

TEST(PosixTeardown, DestroyBackendUnderLiveSessions) {
  auto a = std::make_unique<PosixNetwork>(snappy_config(1));
  auto b = std::make_unique<PosixNetwork>(snappy_config(2));
  a->add_peer({b->mac(), "127.0.0.1", b->udp_port(), b->tcp_port()});
  b->add_peer({a->mac(), "127.0.0.1", a->udp_port(), a->tcp_port()});
  a->attach_interface(a->mac(), Technology::kBluetooth, nullptr);
  b->attach_interface(b->mac(), Technology::kBluetooth, nullptr);

  const NetAddress addr{b->mac(), Technology::kBluetooth, 7};
  ConnectionPtr server;
  ASSERT_TRUE(
      b->listen(addr, [&](ConnectionPtr c) { server = std::move(c); }).ok());
  ConnectionPtr client;
  a->connect(a->mac(), addr, [&](Result<ConnectionPtr> r) {
    if (r.ok()) client = std::move(r).value();
  });
  ASSERT_TRUE(pump_until(*a, *b, [&] { return client && server; }));

  // Armed handlers on both ends; the captures must not outlive the backend.
  Tracker data_capture;
  Tracker close_capture;
  client->set_data_handler([keep = data_capture.strong](const Bytes&) {});
  server->set_close_handler([keep = close_capture.strong] {});
  data_capture.drop_local();
  close_capture.drop_local();
  ASSERT_TRUE(client->write(Bytes{1, 2, 3}).ok());

  // Destroy the client's backend with the session live and a frame possibly
  // still in the kernel buffer. Endpoints survive the backend (shared_ptr)
  // but must be closed with handlers severed.
  a.reset();
  EXPECT_FALSE(client->open());
  EXPECT_TRUE(data_capture.released());
  EXPECT_FALSE(client->write(Bytes{9}).ok());

  // The peer backend notices the dead TCP side and walks its end down too.
  ASSERT_TRUE(pump_until(*b, *b, [&] { return !server->open(); }, 5000));
  b.reset();
  EXPECT_TRUE(close_capture.released());
  EXPECT_FALSE(server->open());
}

TEST(PosixTeardown, DestroyBackendWithHalfOpenConnects) {
  auto a = std::make_unique<PosixNetwork>(snappy_config(1));
  a->attach_interface(a->mac(), Technology::kBluetooth, nullptr);
  // A peer whose TCP port is a black hole for this process: grab a bound
  // port and close it, so connects are refused / retried with backoff.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)), 0);
  socklen_t len = sizeof(sin);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&sin), &len), 0);
  const std::uint16_t dead_port = ntohs(sin.sin_port);
  ::close(probe);
  const MacAddress ghost = MacAddress::from_index(9);
  a->add_peer({ghost, "127.0.0.1", dead_port, dead_port});

  // Several in-flight connects, handler captures tracked. Destroying the
  // backend mid-retry must release them all without invoking any of them
  // after death.
  std::vector<Tracker> trackers(3);
  int fired = 0;
  for (Tracker& tracker : trackers) {
    a->connect(a->mac(), NetAddress{ghost, Technology::kBluetooth, 1},
               [&fired, keep = tracker.strong](Result<ConnectionPtr> r) {
                 EXPECT_FALSE(r.ok());
                 ++fired;
               });
    tracker.drop_local();
  }
  a->poll_once(milliseconds(5));  // let the first attempts hit the wire
  a.reset();
  for (Tracker& tracker : trackers) {
    EXPECT_TRUE(tracker.released());
  }
  // Handlers either fired with an error before destruction or not at all —
  // never after (that would be a use-after-free the sanitizer flags).
}

TEST(PosixTeardown, DestroyBackendWithQueuedSends) {
  auto a = std::make_unique<PosixNetwork>(snappy_config(1));
  auto b = std::make_unique<PosixNetwork>(snappy_config(2));
  a->add_peer({b->mac(), "127.0.0.1", b->udp_port(), b->tcp_port()});
  b->add_peer({a->mac(), "127.0.0.1", a->udp_port(), a->tcp_port()});
  a->attach_interface(a->mac(), Technology::kBluetooth, nullptr);
  b->attach_interface(b->mac(), Technology::kBluetooth, nullptr);

  const NetAddress addr{b->mac(), Technology::kBluetooth, 7};
  ConnectionPtr server;
  ASSERT_TRUE(
      b->listen(addr, [&](ConnectionPtr c) { server = std::move(c); }).ok());
  ConnectionPtr client;
  a->connect(a->mac(), addr, [&](Result<ConnectionPtr> r) {
    if (r.ok()) client = std::move(r).value();
  });
  ASSERT_TRUE(pump_until(*a, *b, [&] { return client && server; }));

  // Stuff the outbox without ever pumping the peer: large frames overrun the
  // kernel's socket buffer so the tail queues in user space; then die with
  // the queue non-empty.
  const Bytes big(32 * 1024, 0x5A);
  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(client->write(big).ok());
  }
  a->poll_once(milliseconds(1));
  a.reset();  // queued Bytes and the epoll EPOLLOUT registration must free
  EXPECT_FALSE(client->open());
  b.reset();
}

}  // namespace posix_teardown

}  // namespace
}  // namespace peerhood
