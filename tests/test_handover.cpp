// Routing handover tests (§5.2): the Fig. 5.8 simulation — artificial link
// decay below threshold 230 for more than 3 samples triggers re-routing
// through a bridge — plus service reconnection and suppression paths.
#include <gtest/gtest.h>

#include "handover/handover.hpp"
#include "scenario_util.hpp"

namespace peerhood {
namespace {

using handover::HandoverConfig;
using handover::HandoverController;
using handover::HandoverEvent;
using node::Testbed;
using testing::fast_node;
using testing::reliable_bluetooth;

// Triangle from Fig. 5.8: client a, server s and bridge c all in mutual
// range; the a-s link is degraded artificially as in the paper.
class HandoverTest : public ::testing::Test {
 protected:
  void build(std::uint64_t seed) {
    testbed_ = std::make_unique<Testbed>(seed);
    testbed_->medium().configure(reliable_bluetooth());
    a_ = &testbed_->add_node("a", {0.0, 0.0},
                             fast_node(MobilityClass::kDynamic));
    // 4 m apart: expected quality ≈ 242, safely above the 230 threshold
    // (the threshold crossing sits at ~5.6 m of the 10 m range).
    s_ = &testbed_->add_node("s", {4.0, 0.0},
                             fast_node(MobilityClass::kStatic));
    c_ = &testbed_->add_node("c", {2.0, 3.0},
                             fast_node(MobilityClass::kStatic));
    (void)s_->library().register_service(
        ServiceInfo{"print", "", 0},
        [this](ChannelPtr channel, const wire::ConnectRequest&) {
          server_channel_ = channel;
          channel->set_data_handler(
              [this](const Bytes&) { ++server_received_; });
        });
    testbed_->run_discovery_rounds(4);
  }

  ChannelPtr connect() {
    auto result = a_->connect_blocking(s_->mac(), "print");
    EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().to_string());
    return result.ok() ? result.value() : nullptr;
  }

  // The paper's §5.2.1 decay: start at 250, subtract 1 per second.
  void start_decay(const ChannelPtr& channel) {
    const double t0 = testbed_->sim().now().seconds();
    channel->connection()->set_quality_override([t0](SimTime now) {
      return static_cast<int>(250.0 - (now.seconds() - t0));
    });
  }

  std::unique_ptr<Testbed> testbed_;
  node::Node* a_{nullptr};
  node::Node* s_{nullptr};
  node::Node* c_{nullptr};
  ChannelPtr server_channel_;
  int server_received_{0};
};

TEST_F(HandoverTest, PlanFindsBridgeSeeingPeer) {
  build(1);
  const ChannelPtr channel = connect();
  ASSERT_NE(channel, nullptr);
  HandoverController controller{a_->library(), channel, {}};
  controller.refresh_plan();
  const auto bridge = controller.planned_bridge();
  ASSERT_TRUE(bridge.has_value());
  EXPECT_EQ(*bridge, c_->mac());
}

TEST_F(HandoverTest, DecayTriggersRoutingHandover) {
  build(2);
  const ChannelPtr channel = connect();
  ASSERT_NE(channel, nullptr);
  start_decay(channel);

  HandoverController controller{a_->library(), channel, {}};
  std::vector<HandoverEvent::Kind> events;
  controller.set_event_handler([&](const HandoverEvent& event) {
    events.push_back(event.kind);
  });
  controller.start();

  // Quality falls below 230 at t≈20 s; low-count >3 needs 4 more samples;
  // then the bridge connection takes a couple of seconds.
  testbed_->run_for(60.0);
  ASSERT_EQ(controller.stats().handovers, 1u);
  EXPECT_TRUE(channel->open());
  // New transport goes through the bridge c.
  EXPECT_EQ(channel->connection()->remote_address().mac, c_->mac());
  EXPECT_EQ(std::count(events.begin(), events.end(),
                       HandoverEvent::Kind::kDegradationDetected),
            1);
  EXPECT_EQ(std::count(events.begin(), events.end(),
                       HandoverEvent::Kind::kHandoverComplete),
            1);
  EXPECT_GE(controller.stats().samples, 20u);
}

TEST_F(HandoverTest, SessionSurvivesHandover) {
  build(3);
  const ChannelPtr channel = connect();
  ASSERT_NE(channel, nullptr);
  start_decay(channel);
  HandoverController controller{a_->library(), channel, {}};
  controller.start();
  testbed_->run_for(60.0);
  ASSERT_EQ(controller.stats().handovers, 1u);
  // Traffic still reaches the same server-side session.
  const int before = server_received_;
  ASSERT_TRUE(channel->write(Bytes{1}).ok());
  testbed_->run_for(5.0);
  EXPECT_EQ(server_received_, before + 1);
  ASSERT_NE(server_channel_, nullptr);
  EXPECT_EQ(server_channel_->session_id(), channel->session_id());
}

TEST_F(HandoverTest, GoodLinkNeverTriggers) {
  build(4);
  const ChannelPtr channel = connect();
  ASSERT_NE(channel, nullptr);
  HandoverController controller{a_->library(), channel, {}};
  controller.start();
  testbed_->run_for(60.0);
  EXPECT_EQ(controller.stats().handovers, 0u);
  EXPECT_EQ(controller.stats().degradations, 0u);
  EXPECT_EQ(controller.state(), handover::HandoverState::kMonitor);
}

TEST_F(HandoverTest, LowCountNeedsConsecutiveSamples) {
  build(5);
  const ChannelPtr channel = connect();
  ASSERT_NE(channel, nullptr);
  // Oscillates per sample: 3 low samples, then 2 good — never more than 3
  // consecutive lows, so the >3 trigger must stay silent. (Counter-based to
  // be independent of monitor phase.)
  auto counter = std::make_shared<int>(0);
  channel->connection()->set_quality_override([counter](SimTime) {
    const int phase = (*counter)++ % 5;
    return phase < 3 ? 210 : 250;
  });
  HandoverController controller{a_->library(), channel, {}};
  controller.start();
  testbed_->run_for(60.0);
  EXPECT_EQ(controller.stats().degradations, 0u);
}

TEST_F(HandoverTest, SendingFlagSuppressesRepair) {
  build(6);
  const ChannelPtr channel = connect();
  ASSERT_NE(channel, nullptr);
  channel->set_sending(false);  // §5.3: upload finished, waiting for result
  start_decay(channel);
  HandoverController controller{a_->library(), channel, {}};
  std::vector<HandoverEvent::Kind> events;
  controller.set_event_handler(
      [&](const HandoverEvent& e) { events.push_back(e.kind); });
  controller.start();
  testbed_->run_for(60.0);
  EXPECT_EQ(controller.stats().handovers, 0u);
  EXPECT_GE(controller.stats().suppressed, 1u);
  EXPECT_TRUE(std::count(events.begin(), events.end(),
                         HandoverEvent::Kind::kRepairSuppressed) > 0);
}

TEST_F(HandoverTest, ReconnectsToAlternativeProviderWhenNoBridge) {
  build(7);
  // Second provider of the same service, reachable from a but out of s's
  // range — otherwise s2 itself could serve as a routing-handover bridge.
  auto& s2 = testbed_->add_node("s2", {-7.0, 0.0},
                                fast_node(MobilityClass::kStatic));
  (void)s2.library().register_service(
      ServiceInfo{"print", "", 0},
      [](ChannelPtr channel, const wire::ConnectRequest&) {
        channel->set_data_handler([](const Bytes&) {});
      });
  // Remove the bridge so routing handover has no plan.
  c_->daemon().stop();
  testbed_->run_discovery_rounds(4);

  const ChannelPtr channel = connect();
  ASSERT_NE(channel, nullptr);
  // Kill the link outright (server walks off / hard loss).
  channel->connection()->set_quality_override([](SimTime) { return 0; });

  HandoverConfig config;
  config.max_route_attempts = 1;
  HandoverController controller{a_->library(), channel, config};
  ChannelPtr replacement;
  int permission_asked = 0;
  controller.set_permission_callback(
      [&](std::function<void(bool)> grant) {
        ++permission_asked;
        grant(true);
      });
  controller.set_event_handler([&](const HandoverEvent& event) {
    if (event.kind == HandoverEvent::Kind::kReconnected) {
      replacement = event.new_channel;
    }
  });
  controller.start();
  testbed_->run_for(90.0);
  EXPECT_EQ(permission_asked, 1);
  ASSERT_NE(replacement, nullptr);
  EXPECT_EQ(replacement->peer(), s2.mac());
  EXPECT_NE(replacement->session_id(), channel->session_id())
      << "service reconnection is a brand-new session (§5.2.2)";
  EXPECT_EQ(controller.stats().reconnections, 1u);
}

TEST_F(HandoverTest, UserMayDeclineReconnection) {
  build(8);
  c_->daemon().stop();
  testbed_->run_discovery_rounds(3);
  const ChannelPtr channel = connect();
  ASSERT_NE(channel, nullptr);
  channel->connection()->set_quality_override([](SimTime) { return 0; });
  HandoverConfig config;
  config.max_route_attempts = 1;
  HandoverController controller{a_->library(), channel, config};
  bool gave_up = false;
  controller.set_permission_callback(
      [](std::function<void(bool)> grant) { grant(false); });
  controller.set_event_handler([&](const HandoverEvent& event) {
    if (event.kind == HandoverEvent::Kind::kGaveUp) gave_up = true;
  });
  controller.start();
  testbed_->run_for(60.0);
  EXPECT_TRUE(gave_up);
  EXPECT_EQ(controller.stats().reconnections, 0u);
}

TEST_F(HandoverTest, HardHandoverBaselineSkipsRouting) {
  build(9);
  auto& s2 = testbed_->add_node("s2", {-6.0, 0.0},
                                fast_node(MobilityClass::kStatic));
  (void)s2.library().register_service(
      ServiceInfo{"print", "", 0},
      [](ChannelPtr channel, const wire::ConnectRequest&) {
        channel->set_data_handler([](const Bytes&) {});
      });
  testbed_->run_discovery_rounds(4);
  const ChannelPtr channel = connect();
  ASSERT_NE(channel, nullptr);
  channel->connection()->set_quality_override([](SimTime) { return 0; });
  HandoverConfig config;
  config.routing_enabled = false;  // Fig. 5.3 behaviour
  HandoverController controller{a_->library(), channel, config};
  ChannelPtr replacement;
  controller.set_event_handler([&](const HandoverEvent& event) {
    if (event.kind == HandoverEvent::Kind::kReconnected) {
      replacement = event.new_channel;
    }
  });
  controller.start();
  testbed_->run_for(90.0);
  EXPECT_EQ(controller.stats().route_attempts, 0u);
  ASSERT_NE(replacement, nullptr);
}

TEST_F(HandoverTest, WalkingAwayScenario) {
  // Physical version of Fig. 5.4: the client walks away from the server
  // while staying near the bridge; the session must survive via routing
  // handover without any artificial decay.
  Testbed testbed{10};
  testbed.medium().configure(reliable_bluetooth());
  auto& server = testbed.add_node("server", {0.0, 0.0},
                                  fast_node(MobilityClass::kStatic));
  auto& bridge = testbed.add_node("bridge", {8.0, 0.0},
                                  fast_node(MobilityClass::kStatic));
  // Client starts next to the server, ends near the bridge but out of the
  // server's range (walking pace, 0.25 m/s — slow enough for discovery).
  auto& client = testbed.add_mobile_node(
      "client",
      std::make_shared<sim::WaypointPath>(
          std::vector<sim::WaypointPath::Waypoint>{
              {SimTime{} + seconds(0.0), {2.0, 0.0}},
              {SimTime{} + seconds(60.0), {2.0, 0.0}},
              {SimTime{} + seconds(116.0), {16.0, 0.0}},
          }),
      fast_node(MobilityClass::kDynamic));
  int received = 0;
  // Server-side sessions live in an explicit registry — a handler owning its
  // own channel would be an unbreakable cycle (see common/handler_slot.hpp).
  std::vector<ChannelPtr> server_sessions;
  (void)server.library().register_service(
      ServiceInfo{"print", "", 0},
      [&received, &server_sessions](ChannelPtr channel,
                                    const wire::ConnectRequest&) {
        server_sessions.push_back(std::move(channel));
        server_sessions.back()->set_data_handler(
            [&received](const Bytes&) { ++received; });
      });
  testbed.run_discovery_rounds(3);

  auto result = client.connect_blocking(server.mac(), "print");
  ASSERT_TRUE(result.ok());
  const ChannelPtr channel = result.value();
  HandoverController controller{client.library(), channel, {}};
  controller.start();

  // Write one message per second for the whole walk.
  for (int i = 0; i < 110; ++i) {
    testbed.sim().schedule_after(seconds(static_cast<double>(i)), [channel] {
      if (channel->open()) (void)channel->write(Bytes{1});
    });
  }
  testbed.run_for(130.0);
  EXPECT_GE(controller.stats().handovers, 1u);
  EXPECT_TRUE(channel->open());
  EXPECT_GT(received, 60);
}

}  // namespace
}  // namespace peerhood
