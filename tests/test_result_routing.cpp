// Result routing tests (§5.3): the server delivers a ready result to a
// client whose connection is gone — via client parameters (Method 2) or a
// discovered client service (Method 1), through bridges when necessary.
#include <gtest/gtest.h>

#include "handover/result_router.hpp"
#include "scenario_util.hpp"

namespace peerhood {
namespace {

using handover::ReconnectMethod;
using handover::ResultRouter;
using handover::ResultRouterConfig;
using node::Testbed;
using testing::fast_node;
using testing::reliable_bluetooth;

class ResultRoutingTest : public ::testing::Test {
 protected:
  void build(std::uint64_t seed, ReconnectMethod method) {
    method_ = method;
    testbed_ = std::make_unique<Testbed>(seed);
    testbed_->medium().configure(reliable_bluetooth());
    client_ = &testbed_->add_node("client", {0.0, 0.0},
                                  fast_node(MobilityClass::kDynamic));
    server_ = &testbed_->add_node("server", {5.0, 0.0},
                                  fast_node(MobilityClass::kStatic));
    // The client's result-callback service: visible "client" attribute for
    // Method 1, hidden for Method 2.
    (void)client_->library().register_service(
        ServiceInfo{"client.result",
                    method == ReconnectMethod::kClientService ? "client"
                                                              : kHiddenAttribute,
                    0},
        [this](ChannelPtr channel, const wire::ConnectRequest&) {
          callback_channel_ = channel;
          channel->set_data_handler(
              [this](const Bytes& frame) { client_received_ = frame; });
        });
    (void)server_->library().register_service(
        ServiceInfo{"compute", "", 0},
        [this](ChannelPtr channel, const wire::ConnectRequest&) {
          server_channel_ = channel;
        });
    testbed_->run_discovery_rounds(4);
  }

  ChannelPtr connect_with_params() {
    Library::ConnectOptions options;
    options.include_client_params = true;
    options.reconnect_service = "client.result";
    auto result =
        client_->connect_blocking(server_->mac(), "compute", options);
    EXPECT_TRUE(result.ok());
    return result.ok() ? result.value() : nullptr;
  }

  std::unique_ptr<Testbed> testbed_;
  node::Node* client_{nullptr};
  node::Node* server_{nullptr};
  ChannelPtr server_channel_;
  ChannelPtr callback_channel_;
  Bytes client_received_;
  ReconnectMethod method_{ReconnectMethod::kClientParams};
};

TEST_F(ResultRoutingTest, LiveChannelDeliversDirectly) {
  build(1, ReconnectMethod::kClientParams);
  const ChannelPtr channel = connect_with_params();
  ASSERT_NE(server_channel_, nullptr);
  Bytes got;
  channel->set_data_handler([&](const Bytes& frame) { got = frame; });

  ResultRouter router{server_->library()};
  std::optional<Status> status;
  router.deliver(server_channel_, Bytes{1, 2, 3},
                 [&](Status s) { status = s; });
  testbed_->run_for(5.0);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok());
  EXPECT_EQ(got, (Bytes{1, 2, 3}));
  EXPECT_EQ(router.stats().delivered_live, 1u);
}

TEST_F(ResultRoutingTest, Method2ReconnectsAfterLoss) {
  build(2, ReconnectMethod::kClientParams);
  const ChannelPtr channel = connect_with_params();
  ASSERT_NE(server_channel_, nullptr);
  // Client side drops the connection (simulating §5.3: "after the data
  // sending it will simulate the device movement disconnecting").
  channel->close();
  testbed_->run_for(3.0);
  ASSERT_FALSE(server_channel_->open());

  ResultRouter router{server_->library()};
  std::optional<Status> status;
  router.deliver(server_channel_, Bytes{9, 9}, [&](Status s) { status = s; });
  testbed_->run_for(60.0);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok()) << status->error().to_string();
  EXPECT_EQ(client_received_, (Bytes{9, 9}));
  EXPECT_EQ(router.stats().delivered_reconnect, 1u);
}

TEST_F(ResultRoutingTest, Method1UsesDiscoveredClientService) {
  build(3, ReconnectMethod::kClientService);
  const ChannelPtr channel = connect_with_params();
  ASSERT_NE(server_channel_, nullptr);
  channel->close();
  testbed_->run_for(3.0);

  ResultRouterConfig config;
  config.method = ReconnectMethod::kClientService;
  ResultRouter router{server_->library(), config};
  std::optional<Status> status;
  router.deliver(server_channel_, Bytes{4, 2}, [&](Status s) { status = s; });
  testbed_->run_for(90.0);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok()) << status->error().to_string();
  EXPECT_EQ(client_received_, (Bytes{4, 2}));
}

TEST_F(ResultRoutingTest, Method2FailsWithoutParams) {
  build(4, ReconnectMethod::kClientParams);
  // Connect WITHOUT pushing client parameters.
  auto result = client_->connect_blocking(server_->mac(), "compute");
  ASSERT_TRUE(result.ok());
  ASSERT_NE(server_channel_, nullptr);
  result.value()->close();
  testbed_->run_for(3.0);

  ResultRouter router{server_->library()};
  std::optional<Status> status;
  router.deliver(server_channel_, Bytes{1}, [&](Status s) { status = s; });
  testbed_->run_for(30.0);
  ASSERT_TRUE(status.has_value());
  EXPECT_FALSE(status->ok());
  EXPECT_EQ(router.stats().failures, 1u);
}

TEST_F(ResultRoutingTest, ReconnectsThroughBridgeWhenClientMoved) {
  // Client uploads next to the server, then moves behind a bridge; the
  // result must travel server -> bridge -> client (Fig. 5.9).
  Testbed testbed{5};
  testbed.medium().configure(reliable_bluetooth());
  auto& server = testbed.add_node("server", {0.0, 0.0},
                                  fast_node(MobilityClass::kStatic));
  auto& bridge = testbed.add_node("bridge", {8.0, 0.0},
                                  fast_node(MobilityClass::kStatic));
  auto& client = testbed.add_mobile_node(
      "client",
      std::make_shared<sim::WaypointPath>(
          std::vector<sim::WaypointPath::Waypoint>{
              {SimTime{} + seconds(0.0), {2.0, 0.0}},
              {SimTime{} + seconds(80.0), {2.0, 0.0}},
              {SimTime{} + seconds(120.0), {14.0, 0.0}},
          }),
      fast_node(MobilityClass::kDynamic));
  (void)bridge.name();

  Bytes client_received;
  // Callback sessions live in an explicit registry — a handler owning its
  // own channel would be an unbreakable cycle (see common/handler_slot.hpp).
  std::vector<ChannelPtr> callback_sessions;
  (void)client.library().register_service(
      ServiceInfo{"client.result", kHiddenAttribute, 0},
      [&](ChannelPtr channel, const wire::ConnectRequest&) {
        callback_sessions.push_back(std::move(channel));
        callback_sessions.back()->set_data_handler(
            [&client_received](const Bytes& f) { client_received = f; });
      });
  ChannelPtr server_channel;
  (void)server.library().register_service(
      ServiceInfo{"compute", "", 0},
      [&](ChannelPtr channel, const wire::ConnectRequest&) {
        server_channel = channel;
      });
  testbed.run_discovery_rounds(3);

  Library::ConnectOptions options;
  options.include_client_params = true;
  options.reconnect_service = "client.result";
  auto result = client.connect_blocking(server.mac(), "compute", options);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(server_channel, nullptr);

  // Let the client walk away; the connection dies on coverage loss.
  testbed.run_for(130.0);
  ASSERT_FALSE(server_channel->open());

  // Give discovery time to re-route the client via the bridge, then send.
  ResultRouterConfig config;
  config.max_attempts = 6;
  handover::ResultRouter router{server.library(), config};
  std::optional<Status> status;
  router.deliver(server_channel, Bytes{7, 7, 7},
                 [&](Status s) { status = s; });
  testbed.run_for(240.0);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok()) << status->error().to_string();
  EXPECT_EQ(client_received, (Bytes{7, 7, 7}));
}

TEST_F(ResultRoutingTest, GivesUpWhenClientUnreachable) {
  build(6, ReconnectMethod::kClientParams);
  const ChannelPtr channel = connect_with_params();
  ASSERT_NE(server_channel_, nullptr);
  channel->close();
  // The client vanishes completely.
  client_->daemon().stop();
  testbed_->run_for(60.0);

  ResultRouterConfig config;
  config.max_attempts = 2;
  config.retry_base = seconds(5.0);
  config.retry_jitter = 0.0;
  ResultRouter router{server_->library(), config};
  std::optional<Status> status;
  router.deliver(server_channel_, Bytes{1}, [&](Status s) { status = s; });
  testbed_->run_for(120.0);
  ASSERT_TRUE(status.has_value());
  EXPECT_FALSE(status->ok());
}

}  // namespace
}  // namespace peerhood
