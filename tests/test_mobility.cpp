#include "sim/mobility.hpp"

#include <gtest/gtest.h>

namespace peerhood::sim {
namespace {

SimTime at(double s) { return SimTime{} + seconds(s); }

TEST(StaticPosition, NeverMoves) {
  StaticPosition model{{3.0, 4.0}};
  EXPECT_EQ(model.position_at(at(0)), (Vec2{3.0, 4.0}));
  EXPECT_EQ(model.position_at(at(1e6)), (Vec2{3.0, 4.0}));
}

TEST(LinearMotion, MovesAtConstantVelocity) {
  LinearMotion model{{0.0, 0.0}, {1.0, 0.5}};
  const Vec2 p = model.position_at(at(10.0));
  EXPECT_DOUBLE_EQ(p.x, 10.0);
  EXPECT_DOUBLE_EQ(p.y, 5.0);
}

TEST(LinearMotion, HoldsUntilDeparture) {
  LinearMotion model{{5.0, 5.0}, {1.0, 0.0}, at(10.0)};
  EXPECT_EQ(model.position_at(at(3.0)), (Vec2{5.0, 5.0}));
  EXPECT_EQ(model.position_at(at(10.0)), (Vec2{5.0, 5.0}));
  const Vec2 p = model.position_at(at(15.0));
  EXPECT_DOUBLE_EQ(p.x, 10.0);
}

TEST(WaypointPath, InterpolatesLinearly) {
  WaypointPath model{{
      {at(0.0), {0.0, 0.0}},
      {at(10.0), {10.0, 0.0}},
      {at(20.0), {10.0, 10.0}},
  }};
  EXPECT_EQ(model.position_at(at(5.0)), (Vec2{5.0, 0.0}));
  EXPECT_EQ(model.position_at(at(15.0)), (Vec2{10.0, 5.0}));
}

TEST(WaypointPath, ClampsOutsideRange) {
  WaypointPath model{{
      {at(1.0), {1.0, 1.0}},
      {at(2.0), {2.0, 2.0}},
  }};
  EXPECT_EQ(model.position_at(at(0.0)), (Vec2{1.0, 1.0}));
  EXPECT_EQ(model.position_at(at(100.0)), (Vec2{2.0, 2.0}));
}

TEST(WaypointPath, ExactWaypointHit) {
  WaypointPath model{{
      {at(0.0), {0.0, 0.0}},
      {at(10.0), {10.0, 0.0}},
  }};
  EXPECT_EQ(model.position_at(at(10.0)), (Vec2{10.0, 0.0}));
}

TEST(RandomWaypoint, StaysInsideArea) {
  RandomWaypoint::Config config;
  config.area_min = {0.0, 0.0};
  config.area_max = {50.0, 30.0};
  RandomWaypoint model{config, {25.0, 15.0}, Rng{42}};
  for (double t = 0.0; t < 600.0; t += 1.0) {
    const Vec2 p = model.position_at(at(t));
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 50.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 30.0);
  }
}

TEST(RandomWaypoint, SpeedBounded) {
  RandomWaypoint::Config config;
  config.speed_min_mps = 0.5;
  config.speed_max_mps = 1.5;
  config.pause = SimDuration{0};
  RandomWaypoint model{config, {10.0, 10.0}, Rng{7}};
  Vec2 prev = model.position_at(at(0.0));
  for (double t = 0.1; t < 120.0; t += 0.1) {
    const Vec2 cur = model.position_at(at(t));
    const double speed = distance(prev, cur) / 0.1;
    EXPECT_LE(speed, 1.6);  // small tolerance over max speed
    prev = cur;
  }
}

TEST(RandomWaypoint, DeterministicForSameSeed) {
  RandomWaypoint::Config config;
  RandomWaypoint a{config, {1.0, 1.0}, Rng{5}};
  RandomWaypoint b{config, {1.0, 1.0}, Rng{5}};
  for (double t = 0.0; t < 100.0; t += 7.0) {
    EXPECT_EQ(a.position_at(at(t)), b.position_at(at(t)));
  }
}

TEST(RandomWaypoint, QueriesMayGoBackwards) {
  RandomWaypoint model{{}, {50.0, 50.0}, Rng{3}};
  const Vec2 late = model.position_at(at(500.0));
  const Vec2 early = model.position_at(at(10.0));
  const Vec2 late_again = model.position_at(at(500.0));
  EXPECT_EQ(late, late_again);
  (void)early;
}

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, 4.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 6.0}));
  EXPECT_EQ(b - a, (Vec2{2.0, 2.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_DOUBLE_EQ(distance(a, b), std::hypot(2.0, 2.0));
}

}  // namespace
}  // namespace peerhood::sim
