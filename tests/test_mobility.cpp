#include "sim/mobility.hpp"

#include <gtest/gtest.h>

namespace peerhood::sim {
namespace {

SimTime at(double s) { return SimTime{} + seconds(s); }

TEST(StaticPosition, NeverMoves) {
  StaticPosition model{{3.0, 4.0}};
  EXPECT_EQ(model.position_at(at(0)), (Vec2{3.0, 4.0}));
  EXPECT_EQ(model.position_at(at(1e6)), (Vec2{3.0, 4.0}));
}

TEST(LinearMotion, MovesAtConstantVelocity) {
  LinearMotion model{{0.0, 0.0}, {1.0, 0.5}};
  const Vec2 p = model.position_at(at(10.0));
  EXPECT_DOUBLE_EQ(p.x, 10.0);
  EXPECT_DOUBLE_EQ(p.y, 5.0);
}

TEST(LinearMotion, HoldsUntilDeparture) {
  LinearMotion model{{5.0, 5.0}, {1.0, 0.0}, at(10.0)};
  EXPECT_EQ(model.position_at(at(3.0)), (Vec2{5.0, 5.0}));
  EXPECT_EQ(model.position_at(at(10.0)), (Vec2{5.0, 5.0}));
  const Vec2 p = model.position_at(at(15.0));
  EXPECT_DOUBLE_EQ(p.x, 10.0);
}

TEST(WaypointPath, InterpolatesLinearly) {
  WaypointPath model{{
      {at(0.0), {0.0, 0.0}},
      {at(10.0), {10.0, 0.0}},
      {at(20.0), {10.0, 10.0}},
  }};
  EXPECT_EQ(model.position_at(at(5.0)), (Vec2{5.0, 0.0}));
  EXPECT_EQ(model.position_at(at(15.0)), (Vec2{10.0, 5.0}));
}

TEST(WaypointPath, ClampsOutsideRange) {
  WaypointPath model{{
      {at(1.0), {1.0, 1.0}},
      {at(2.0), {2.0, 2.0}},
  }};
  EXPECT_EQ(model.position_at(at(0.0)), (Vec2{1.0, 1.0}));
  EXPECT_EQ(model.position_at(at(100.0)), (Vec2{2.0, 2.0}));
}

TEST(WaypointPath, ExactWaypointHit) {
  WaypointPath model{{
      {at(0.0), {0.0, 0.0}},
      {at(10.0), {10.0, 0.0}},
  }};
  EXPECT_EQ(model.position_at(at(10.0)), (Vec2{10.0, 0.0}));
}

TEST(RandomWaypoint, StaysInsideArea) {
  RandomWaypoint::Config config;
  config.area_min = {0.0, 0.0};
  config.area_max = {50.0, 30.0};
  RandomWaypoint model{config, {25.0, 15.0}, Rng{42}};
  for (double t = 0.0; t < 600.0; t += 1.0) {
    const Vec2 p = model.position_at(at(t));
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 50.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 30.0);
  }
}

TEST(RandomWaypoint, SpeedBounded) {
  RandomWaypoint::Config config;
  config.speed_min_mps = 0.5;
  config.speed_max_mps = 1.5;
  config.pause = SimDuration{0};
  RandomWaypoint model{config, {10.0, 10.0}, Rng{7}};
  Vec2 prev = model.position_at(at(0.0));
  for (double t = 0.1; t < 120.0; t += 0.1) {
    const Vec2 cur = model.position_at(at(t));
    const double speed = distance(prev, cur) / 0.1;
    EXPECT_LE(speed, 1.6);  // small tolerance over max speed
    prev = cur;
  }
}

TEST(RandomWaypoint, DeterministicForSameSeed) {
  RandomWaypoint::Config config;
  RandomWaypoint a{config, {1.0, 1.0}, Rng{5}};
  RandomWaypoint b{config, {1.0, 1.0}, Rng{5}};
  for (double t = 0.0; t < 100.0; t += 7.0) {
    EXPECT_EQ(a.position_at(at(t)), b.position_at(at(t)));
  }
}

TEST(RandomWaypoint, QueriesMayGoBackwards) {
  RandomWaypoint model{{}, {50.0, 50.0}, Rng{3}};
  const Vec2 late = model.position_at(at(500.0));
  const Vec2 early = model.position_at(at(10.0));
  const Vec2 late_again = model.position_at(at(500.0));
  EXPECT_EQ(late, late_again);
  (void)early;
}

// --- velocity_at (PR 5): analytic velocities vs finite differences ----------

// Central finite difference of position_at, the oracle every analytic
// velocity override must agree with (away from kinks).
Vec2 fd_velocity(const MobilityModel& model, SimTime t) {
  const SimDuration h = milliseconds(20);
  const Vec2 a = model.position_at(SimTime{t.since_epoch - h});
  const Vec2 b = model.position_at(t + h);
  return (b - a) * (1.0 / (2.0 * 0.020));
}

void expect_velocity_parity(const MobilityModel& model, double t_s,
                            double tol = 0.05) {
  const SimTime t = at(t_s);
  const Vec2 analytic = model.velocity_at(t);
  const Vec2 fd = fd_velocity(model, t);
  EXPECT_NEAR(analytic.x, fd.x, tol) << "t=" << t_s;
  EXPECT_NEAR(analytic.y, fd.y, tol) << "t=" << t_s;
}

TEST(VelocityAt, StaticIsZero) {
  StaticPosition model{{3.0, 4.0}};
  EXPECT_EQ(model.velocity_at(at(5.0)), (Vec2{0.0, 0.0}));
}

TEST(VelocityAt, LinearMatchesFiniteDifference) {
  LinearMotion model{{0.0, 0.0}, {1.0, -0.5}, at(10.0)};
  EXPECT_EQ(model.velocity_at(at(3.0)), (Vec2{0.0, 0.0}));
  expect_velocity_parity(model, 5.0);
  expect_velocity_parity(model, 20.0);
  EXPECT_EQ(model.velocity_at(at(20.0)), (Vec2{1.0, -0.5}));
}

TEST(VelocityAt, WaypointPathMatchesFiniteDifference) {
  WaypointPath model{{
      {at(0.0), {0.0, 0.0}},
      {at(10.0), {10.0, 0.0}},
      {at(20.0), {10.0, 10.0}},
  }};
  expect_velocity_parity(model, 5.0);
  expect_velocity_parity(model, 15.0);
  // Holding before the first and after the last waypoint: standing still.
  EXPECT_EQ((WaypointPath{{{at(5.0), {1.0, 1.0}}, {at(6.0), {2.0, 1.0}}}}
                 .velocity_at(at(1.0))),
            (Vec2{0.0, 0.0}));
  EXPECT_EQ(model.velocity_at(at(25.0)), (Vec2{0.0, 0.0}));
}

TEST(VelocityAt, RandomWaypointMatchesFiniteDifference) {
  RandomWaypoint::Config config;
  config.pause = seconds(1.0);
  RandomWaypoint model{config, {50.0, 50.0}, Rng{11}};
  // Probe generic instants; skip ones adjacent to a segment boundary where
  // the finite difference straddles the kink.
  for (double t = 3.0; t < 200.0; t += 7.3) {
    const Vec2 v0 = model.velocity_at(at(t - 0.05));
    const Vec2 v1 = model.velocity_at(at(t + 0.05));
    if (!(v0 == v1)) continue;  // kink inside the probe window
    expect_velocity_parity(model, t);
  }
}

TEST(VelocityAt, GaussMarkovMatchesFiniteDifference) {
  GaussMarkov model{{}, {50.0, 50.0}, Rng{5}};
  for (double t = 1.5; t < 60.0; t += 4.0) {
    const Vec2 v0 = model.velocity_at(at(t - 0.05));
    const Vec2 v1 = model.velocity_at(at(t + 0.05));
    if (!(v0 == v1)) continue;
    expect_velocity_parity(model, t);
  }
}

TEST(VelocityAt, GroupMemberMatchesFiniteDifference) {
  auto reference = std::make_shared<WaypointPath>(
      std::vector<WaypointPath::Waypoint>{
          {at(0.0), {0.0, 0.0}},
          {at(100.0), {50.0, 0.0}},
      });
  GroupMember member{reference, {1.0, 0.5}, {}, Rng{9}};
  for (double t = 2.1; t < 90.0; t += 6.7) {
    const Vec2 v0 = member.velocity_at(at(t - 0.05));
    const Vec2 v1 = member.velocity_at(at(t + 0.05));
    if (!(v0 == v1)) continue;
    expect_velocity_parity(member, t);
  }
}

// --- Gauss–Markov ------------------------------------------------------------

TEST(GaussMarkov, StaysInsideAreaAndDeterministic) {
  GaussMarkov::Config config;
  config.area_min = {0.0, 0.0};
  config.area_max = {40.0, 25.0};
  GaussMarkov a{config, {20.0, 12.0}, Rng{21}};
  GaussMarkov b{config, {20.0, 12.0}, Rng{21}};
  for (double t = 0.0; t < 400.0; t += 1.7) {
    const Vec2 p = a.position_at(at(t));
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 40.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 25.0);
    EXPECT_EQ(p, b.position_at(at(t)));
  }
}

TEST(GaussMarkov, MotionIsTemporallyCorrelated) {
  // With alpha near 1 the heading barely changes between updates — the
  // defining property vs random waypoint.
  GaussMarkov::Config config;
  config.area_min = {0.0, 0.0};
  config.area_max = {1000.0, 1000.0};  // far from edge steering
  config.alpha = 0.97;
  config.direction_sigma = 0.2;
  GaussMarkov model{config, {500.0, 500.0}, Rng{3}};
  int aligned = 0;
  int samples = 0;
  for (double t = 2.0; t < 60.0; t += 1.0) {
    const Vec2 v0 = model.velocity_at(at(t));
    const Vec2 v1 = model.velocity_at(at(t + 1.0));
    const double n0 = v0.norm();
    const double n1 = v1.norm();
    if (n0 < 1e-6 || n1 < 1e-6) continue;
    ++samples;
    const double cosine = (v0.x * v1.x + v0.y * v1.y) / (n0 * n1);
    if (cosine > 0.5) ++aligned;
  }
  ASSERT_GT(samples, 20);
  EXPECT_GT(aligned, samples * 8 / 10);
}

// --- Reference-point group mobility ------------------------------------------

TEST(GroupMember, TracksReferenceWithinDeviationRadius) {
  auto reference = std::make_shared<WaypointPath>(
      std::vector<WaypointPath::Waypoint>{
          {at(0.0), {0.0, 0.0}},
          {at(50.0), {25.0, 10.0}},
      });
  GroupMember::Config config;
  config.deviation_radius_m = 2.0;
  const Vec2 offset{3.0, -1.0};
  GroupMember member{reference, offset, config, Rng{17}};
  GroupMember twin{reference, offset, config, Rng{17}};
  for (double t = 0.0; t < 70.0; t += 0.9) {
    const Vec2 anchor = reference->position_at(at(t)) + offset;
    const Vec2 p = member.position_at(at(t));
    EXPECT_LE(distance(p, anchor), config.deviation_radius_m + 1e-9);
    EXPECT_EQ(p, twin.position_at(at(t)));
  }
}

TEST(GroupMember, ZeroDeviationIsExactlyReferencePlusOffset) {
  auto reference = std::make_shared<StaticPosition>(Vec2{4.0, 4.0});
  GroupMember::Config config;
  config.deviation_radius_m = 0.0;
  GroupMember member{reference, {1.0, 2.0}, config, Rng{1}};
  EXPECT_TRUE(member.is_static());
  EXPECT_EQ(member.position_at(at(9.0)), (Vec2{5.0, 6.0}));
}

// --- Segment pruning (PR 5 satellite) ----------------------------------------

TEST(RandomWaypoint, LongSimsKeepBoundedHistory) {
  RandomWaypoint::Config config;
  config.pause = seconds(0.5);
  RandomWaypoint model{config, {50.0, 50.0}, Rng{7}};
  for (double t = 0.0; t < 50'000.0; t += 5.0) {
    (void)model.position_at(at(t));
  }
  // Unpruned this walk would hold tens of thousands of segments.
  EXPECT_LE(model.segment_count(), 80u);
}

TEST(RandomWaypoint, BackwardQueryBehindPruneBaseIsStillExact) {
  RandomWaypoint::Config config;
  RandomWaypoint pruned{config, {50.0, 50.0}, Rng{13}};
  RandomWaypoint oracle{config, {50.0, 50.0}, Rng{13}};

  // Record early truth from the oracle (no pruning pressure yet).
  std::vector<std::pair<double, Vec2>> early;
  for (double t = 1.0; t < 300.0; t += 13.7) {
    early.emplace_back(t, oracle.position_at(at(t)));
  }
  // Drive the pruned walk far forward, discarding its early history.
  for (double t = 0.0; t < 20'000.0; t += 5.0) {
    (void)pruned.position_at(at(t));
  }
  ASSERT_LE(pruned.segment_count(), 80u);
  // Jumping back behind the prune base replays the walk deterministically.
  for (const auto& [t, expected] : early) {
    EXPECT_EQ(pruned.position_at(at(t)), expected) << "t=" << t;
  }
  // And the far future still matches a fresh extension after the rewind.
  EXPECT_EQ(pruned.position_at(at(20'000.0)), oracle.position_at(at(20'000.0)));
}

TEST(GaussMarkov, LongSimsKeepBoundedHistory) {
  GaussMarkov model{{}, {50.0, 50.0}, Rng{29}};
  for (double t = 0.0; t < 20'000.0; t += 2.0) {
    (void)model.position_at(at(t));
  }
  EXPECT_LE(model.segment_count(), 80u);
  // Backwards replay stays exact.
  GaussMarkov oracle{{}, {50.0, 50.0}, Rng{29}};
  EXPECT_EQ(model.position_at(at(10.0)), oracle.position_at(at(10.0)));
}

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, 4.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 6.0}));
  EXPECT_EQ(b - a, (Vec2{2.0, 2.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_DOUBLE_EQ(distance(a, b), std::hypot(2.0, 2.0));
}

}  // namespace
}  // namespace peerhood::sim
