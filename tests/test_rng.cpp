#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace peerhood {
namespace {

TEST(Rng, Deterministic) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng{9};
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform(3.0, 18.0);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 18.0);
  }
}

TEST(Rng, UniformMeanIsCentred) {
  Rng rng{11};
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(0.0, 10.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng{13};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.uniform_int(0, 5);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 5);
    saw_lo |= v == 0;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng{15};
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
  EXPECT_EQ(rng.uniform_int(4, 3), 4);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{17};
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.16)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.16, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng{19};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng{21};
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent{23};
  Rng child = parent.fork();
  // Parent continues from a different point than the child stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace peerhood
