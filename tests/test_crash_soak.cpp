// Crash soak: the canned scenarios run under the node-crash plane — the
// session server hard-crashes mid-run, an active bridge relay hard-crashes
// mid-relay, and MTBF/MTTR churn cycles relay nodes — across multiple seeds.
// Sessions run over ReliableChannel with the server-side SessionStore
// journal, so every surviving-endpoint session must resume with exactly-once
// in-order delivery (dup_or_reorder == 0, gaps == 0), discovery must
// re-converge after the dust settles, and the whole run must replay
// bit-identically from the same (seed, crash schedule) pair. Runs under
// ASan/UBSan/LSan in CI, so any memory error the crash paths provoke fails
// the suite.
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace peerhood::scenario {
namespace {

// Crash scenarios keep the controller alive across the peer's downtime: no
// reconnection to another provider (it would abandon the journalled
// session), many dead-link passes (monitor ticks once per second, so the
// pass budget must outlast the longest downtime plus re-discovery), and the
// direct-resume path that turns a restarted peer's kUnknownSession into a
// kResumeRestart against its journal.
void make_crash_tolerant(SessionSpec& session) {
  session.reliable = true;
  session.handover_config.reconnection_enabled = false;
  session.handover_config.direct_resume_enabled = true;
  session.handover_config.max_dead_link_passes = 1000;
}

struct SoakOutcome {
  ScenarioMetrics metrics;
  bool discovery_reconverged{false};
};

// Runs one scenario under its crash schedule, then checks that discovery
// re-converges: every crash has healed by the end of the body (schedules in
// this suite keep downtime well inside the run), so a few extra rounds must
// restore the client's view of its server.
SoakOutcome run_soak(ScenarioSpec spec) {
  ScenarioRunner runner{std::move(spec)};
  const Status status = runner.setup();
  EXPECT_TRUE(status.ok()) << status.error().to_string();
  if (!status.ok()) return {};
  runner.run();

  SoakOutcome outcome;
  outcome.metrics = runner.metrics();
  runner.testbed().run_discovery_rounds(4);
  node::Node& client =
      runner.testbed().node(runner.spec().sessions[0].client);
  const MacAddress server_mac =
      runner.testbed().node(runner.spec().sessions[0].server).mac();
  outcome.discovery_reconverged = client.daemon().storage().contains(server_mac);
  return outcome;
}

// Exactly-once: the per-session counter carried in every payload never went
// backwards (no duplicate delivery, no reorder past the frontier) and never
// skipped forwards (no silent loss). `received` may trail `sent` by the
// frames still in flight (or in the reliable outbox) when the body ends.
void check_exactly_once(const SessionMetrics& session) {
  EXPECT_EQ(session.dup_or_reorder, 0u);
  EXPECT_EQ(session.gaps, 0u);
  EXPECT_LE(session.received, session.sent);
}

// --- Session server crashes mid-run ----------------------------------------
// The corridor's server hard-crashes during the stable traffic phase and
// restarts 10s later with a fresh epoch and empty engine. The walker's
// controller keeps retrying across the downtime; once the server answers
// kUnknownSession the library replays kResumeRestart from the SessionStore
// journal and delivery continues exactly-once. The walk then exercises an
// ordinary bridge handover on the *resumed* session.
TEST(CrashSoak, ServerCrashResumesFromJournalAcrossSeeds) {
  for (const std::uint64_t seed : {301u, 302u, 303u}) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    ScenarioSpec spec = corridor_walk(seed, /*predictive=*/true);
    make_crash_tolerant(spec.sessions[0]);
    CrashScheduleSpec::Crash crash;
    crash.targets = {"server"};
    crash.at_s = 30.0;
    crash.downtime_s = 10.0;
    spec.crashes.crashes.push_back(crash);

    const SoakOutcome outcome = run_soak(std::move(spec));
    ASSERT_EQ(outcome.metrics.sessions.size(), 1u);
    const SessionMetrics& session = outcome.metrics.sessions[0];
    EXPECT_TRUE(session.connected);
    EXPECT_EQ(outcome.metrics.fault_stats.node_crashes, 1u);
    EXPECT_EQ(outcome.metrics.fault_stats.node_restarts, 1u);
    // The recovery went through the journal, not a fresh session.
    EXPECT_GE(outcome.metrics.restart_resumes, 1u);
    EXPECT_EQ(session.restarts, 0u);
    check_exactly_once(session);
    // The body is ~133s at 1 msg/s; clearing this floor means delivery
    // resumed after the crash window instead of merely predating it, and
    // the small gap to `sent` is bounded by the in-flight tail.
    EXPECT_GT(session.received, 100u);
    EXPECT_GE(session.received + 15, session.sent);
    EXPECT_TRUE(outcome.discovery_reconverged);
  }
}

// --- Active bridge relay crashes mid-relay ----------------------------------
// The crash lands after the corridor walk, when the session is riding the
// bridge relay. Both relay legs die; the controller treats the crashed relay
// as a dead link and keeps re-planning until the restarted bridge (its own
// storage wiped by the crash) re-discovers the server and can relay again.
// The server kept the session alive throughout, so this is a plain resume —
// no journal needed — but delivery must still be exactly-once.
TEST(CrashSoak, BridgeRelayCrashRereoutesAcrossSeeds) {
  for (const std::uint64_t seed : {401u, 402u, 403u}) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    ScenarioSpec spec = corridor_walk(seed, /*predictive=*/true);
    make_crash_tolerant(spec.sessions[0]);
    // Recovery needs two discovery cycles after the restart (the bridge
    // re-learns the server, then the walker re-fetches the bridge's
    // neighbour list) before the resume can route — give the body room.
    spec.duration_s += 25.0;
    CrashScheduleSpec::Crash crash;
    crash.targets = {"bridge"};
    crash.at_s = 106.0;  // walker parked at 12m, session bridged
    crash.downtime_s = 6.0;
    spec.crashes.crashes.push_back(crash);

    const SoakOutcome outcome = run_soak(std::move(spec));
    ASSERT_EQ(outcome.metrics.sessions.size(), 1u);
    const SessionMetrics& session = outcome.metrics.sessions[0];
    EXPECT_TRUE(session.connected);
    EXPECT_EQ(outcome.metrics.fault_stats.node_crashes, 1u);
    EXPECT_EQ(outcome.metrics.fault_stats.node_restarts, 1u);
    check_exactly_once(session);
    // At least the original walk handover plus the post-crash repair.
    EXPECT_GE(session.handovers, 2u);
    // Delivery continued after the relay came back: the pre-crash phase can
    // account for at most ~106 messages.
    EXPECT_GT(session.received, 110u);
    EXPECT_TRUE(outcome.discovery_reconverged);
  }
}

// --- MTBF/MTTR churn + a server crash under churn ---------------------------
// The office relays (anchors) crash and restart on seeded exponential
// clocks while both sessions run, and the session server itself takes one
// scheduled crash mid-run. Every surviving-endpoint session must come back
// exactly-once; the churn keeps tearing down the routes it comes back over.
TEST(CrashSoak, ChurnCrashesSurviveAcrossSeeds) {
  for (const std::uint64_t seed : {501u, 502u, 503u}) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    ScenarioSpec spec = churn(seed, /*predictive=*/true);
    // Replace the daemon stop/start cycling with the crash plane's churn:
    // same nodes, but now a hard kill with volatile-state loss.
    spec.churn_interval_s = 0.0;
    for (SessionSpec& session : spec.sessions) make_crash_tolerant(session);
    CrashScheduleSpec::Churn churn_spec;
    churn_spec.targets = {"anchor"};
    churn_spec.mtbf_s = 25.0;
    churn_spec.mttr_s = 6.0;
    spec.crashes.churns.push_back(churn_spec);
    CrashScheduleSpec::Crash crash;
    crash.targets = {"srv0"};
    crash.at_s = 40.0;
    crash.downtime_s = 8.0;
    spec.crashes.crashes.push_back(crash);

    const SoakOutcome outcome = run_soak(std::move(spec));
    ASSERT_EQ(outcome.metrics.sessions.size(), 2u);
    EXPECT_GE(outcome.metrics.fault_stats.node_crashes, 2u);
    EXPECT_GE(outcome.metrics.fault_stats.node_restarts, 1u);
    std::uint64_t received = 0;
    for (const SessionMetrics& session : outcome.metrics.sessions) {
      EXPECT_TRUE(session.connected);
      check_exactly_once(session);
      received += session.received;
    }
    // Both sessions kept delivering across the crash storm: at 1 msg/s per
    // session over a 120s body, this floor cannot be met by the pre-crash
    // phase (<= 80 messages before the server's 40s crash) alone.
    EXPECT_GT(received, 120u);
    EXPECT_TRUE(outcome.discovery_reconverged);
  }
}

// --- Determinism ------------------------------------------------------------
// The same (seed, crash schedule) pair replays bit-identically: every
// application, medium, fault and recovery counter matches across two runs.
TEST(CrashSoak, SameSeedAndCrashScheduleReplayIdentically) {
  const auto run_once = [] {
    ScenarioSpec spec = corridor_walk(88, /*predictive=*/true);
    make_crash_tolerant(spec.sessions[0]);
    CrashScheduleSpec::Crash crash;
    crash.targets = {"server"};
    crash.at_s = 30.0;
    crash.downtime_s = 10.0;
    spec.crashes.crashes.push_back(crash);
    CrashScheduleSpec::Churn churn_spec;
    churn_spec.targets = {"bridge"};
    churn_spec.mtbf_s = 50.0;
    churn_spec.mttr_s = 4.0;
    churn_spec.start_s = 60.0;
    spec.crashes.churns.push_back(churn_spec);
    return run_soak(std::move(spec));
  };
  const SoakOutcome a = run_once();
  const SoakOutcome b = run_once();
  EXPECT_EQ(a.metrics.total_sent(), b.metrics.total_sent());
  EXPECT_EQ(a.metrics.total_received(), b.metrics.total_received());
  EXPECT_EQ(a.metrics.total_handovers(), b.metrics.total_handovers());
  EXPECT_EQ(a.metrics.medium_frames, b.metrics.medium_frames);
  EXPECT_DOUBLE_EQ(a.metrics.total_outage_s(), b.metrics.total_outage_s());
  EXPECT_EQ(a.metrics.restart_resumes, b.metrics.restart_resumes);
  EXPECT_EQ(a.metrics.fault_stats.node_crashes,
            b.metrics.fault_stats.node_crashes);
  EXPECT_EQ(a.metrics.fault_stats.node_restarts,
            b.metrics.fault_stats.node_restarts);
  ASSERT_EQ(a.metrics.sessions.size(), b.metrics.sessions.size());
  for (std::size_t i = 0; i < a.metrics.sessions.size(); ++i) {
    EXPECT_EQ(a.metrics.sessions[i].dup_or_reorder,
              b.metrics.sessions[i].dup_or_reorder);
    EXPECT_EQ(a.metrics.sessions[i].gaps, b.metrics.sessions[i].gaps);
    EXPECT_EQ(a.metrics.sessions[i].outage_episodes,
              b.metrics.sessions[i].outage_episodes);
  }
}

// The crash-free regression guard: an empty CrashScheduleSpec must leave the
// run byte-identical to a build that never heard of the crash plane — the
// plane is not even constructed, so no RNG stream shifts. Mirrors the
// chaos-soak guard (and ScenarioRunner.CorridorRunsTrafficAndMeasures): the
// pre-crash baseline assertions still hold bit-for-bit.
TEST(CrashSoak, EmptyCrashScheduleLeavesScenarioUntouched) {
  ScenarioSpec spec = corridor_walk(7, /*predictive=*/true);
  EXPECT_TRUE(spec.crashes.empty());
  ScenarioRunner runner{std::move(spec)};
  ASSERT_TRUE(runner.setup().ok());
  runner.run();
  EXPECT_FALSE(runner.testbed().medium().has_fault_plane());
  const sim::FaultStats& stats = runner.metrics().fault_stats;
  EXPECT_EQ(stats.frames_seen, 0u);
  EXPECT_EQ(stats.node_crashes, 0u);
  EXPECT_EQ(stats.node_restarts, 0u);
  EXPECT_EQ(runner.metrics().restart_resumes, 0u);
  EXPECT_EQ(runner.metrics().corrupt_frames_dropped, 0u);
  EXPECT_GT(runner.metrics().total_sent(), 80u);
  EXPECT_LE(runner.metrics().frames_lost(), 3u);
}

}  // namespace
}  // namespace peerhood::scenario
