// Predictive make-before-break regression (PR 5, acceptance): on the
// scripted Fig. 5.4 corridor walk and the reference-point group-mobility
// scenario, the predictive engine must beat the reactive baseline by a wide
// outage margin (bench_handover measures ≥5x; asserted here with slack as
// ≥3x) at comparable control overhead (measured ~1.0x; asserted ≤1.5x).
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace peerhood::scenario {
namespace {

struct PolicyTotals {
  double outage_s{0.0};
  std::uint64_t control_frames{0};
  std::uint64_t handovers{0};
  std::uint64_t predictions{0};
  std::uint64_t predictive_handovers{0};
  std::uint64_t frames_lost{0};
};

PolicyTotals run_policy(ScenarioSpec (*factory)(std::uint64_t, bool, double),
                        bool predictive, int seeds, double arg) {
  PolicyTotals totals;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds);
       ++seed) {
    ScenarioRunner runner{factory(seed, predictive, arg)};
    const Status status = runner.setup();
    EXPECT_TRUE(status.ok()) << status.error().to_string();
    if (!status.ok()) continue;
    runner.run();
    const ScenarioMetrics& m = runner.metrics();
    totals.outage_s += m.total_outage_s();
    totals.control_frames += m.control_frames();
    totals.handovers += m.total_handovers();
    totals.frames_lost += m.frames_lost();
    for (const SessionMetrics& s : m.sessions) {
      totals.predictions += s.predictions;
      totals.predictive_handovers += s.predictive_handovers;
    }
  }
  return totals;
}

ScenarioSpec corridor_factory(std::uint64_t seed, bool predictive,
                              double speed) {
  return corridor_walk(seed, predictive, speed);
}

ScenarioSpec group_factory(std::uint64_t seed, bool predictive,
                           double members) {
  return group_walk(seed, predictive, static_cast<int>(members));
}

TEST(PredictiveHandover, CorridorWalkBeatsReactiveByWideMargin) {
  const int seeds = 3;
  const PolicyTotals reactive =
      run_policy(corridor_factory, false, seeds, 0.75);
  const PolicyTotals predictive =
      run_policy(corridor_factory, true, seeds, 0.75);

  // The reactive baseline loses the link before its repair lands: seconds
  // of outage per walk. The predictive engine pre-dials the bridge and
  // swaps while the old link is alive.
  EXPECT_GT(reactive.outage_s, 1.0);
  EXPECT_GE(reactive.handovers, static_cast<std::uint64_t>(seeds));
  EXPECT_EQ(reactive.predictions, 0u);

  EXPECT_GE(predictive.predictions, static_cast<std::uint64_t>(seeds));
  EXPECT_GE(predictive.predictive_handovers,
            static_cast<std::uint64_t>(seeds));
  // ≥5x measured by bench_handover; ≥3x asserted here as slack.
  EXPECT_LT(predictive.outage_s * 3.0, reactive.outage_s)
      << "predictive " << predictive.outage_s << " s vs reactive "
      << reactive.outage_s << " s";
  // Control overhead within 1.5x of the baseline.
  EXPECT_LE(static_cast<double>(predictive.control_frames),
            static_cast<double>(reactive.control_frames) * 1.5);
}

TEST(PredictiveHandover, GroupMobilityBeatsReactiveByWideMargin) {
  const int seeds = 2;
  const PolicyTotals reactive = run_policy(group_factory, false, seeds, 4.0);
  const PolicyTotals predictive = run_policy(group_factory, true, seeds, 4.0);

  EXPECT_GT(reactive.outage_s, 0.5);
  EXPECT_GE(predictive.predictive_handovers, static_cast<std::uint64_t>(
                                                 seeds));
  EXPECT_LT(predictive.outage_s * 3.0, reactive.outage_s)
      << "predictive " << predictive.outage_s << " s vs reactive "
      << reactive.outage_s << " s";
  EXPECT_LE(static_cast<double>(predictive.control_frames),
            static_cast<double>(reactive.control_frames) * 1.5);
}

TEST(PredictiveHandover, MakeBeforeBreakKeepsFramesFlowing) {
  // With make-before-break the walker's message stream never sees a dead
  // transport: nothing (or at most a frame in flight at swap) is lost.
  ScenarioRunner runner{corridor_walk(11, /*predictive=*/true)};
  ASSERT_TRUE(runner.setup().ok());
  runner.run();
  const ScenarioMetrics& m = runner.metrics();
  EXPECT_LE(m.frames_lost(), 1u);
  EXPECT_LE(m.total_outage_s(), 0.5);
  ASSERT_EQ(m.sessions.size(), 1u);
  EXPECT_GE(m.sessions[0].predictive_handovers, 1u);
}

}  // namespace
}  // namespace peerhood::scenario
