// ReliableChannel property test under injected loss, corruption, duplication
// and reorder: across multiple seeds, every sent frame must arrive exactly
// once and in order, with a bounded number of retransmissions, and the
// channel must drain completely once the sender stops.
#include <gtest/gtest.h>

#include "peerhood/reliable_channel.hpp"
#include "scenario_util.hpp"
#include "sim/fault.hpp"

namespace peerhood {
namespace {

using node::Testbed;
using testing::fast_node;
using testing::reliable_bluetooth;
using testing::run_until;

// The fault matrix the channel must survive: bursty loss well above 10%,
// plus independent corruption (dropped by the frame check, so extra loss),
// duplication and reorder jitter.
sim::FaultProfile chaos_profile() {
  sim::FaultProfile profile;
  profile.loss_good = 0.05;
  profile.loss_bad = 0.7;
  profile.p_good_to_bad = 0.08;
  profile.p_bad_to_good = 0.3;
  profile.quality_coupling = 0.5;
  profile.corrupt_prob = 0.05;
  profile.duplicate_prob = 0.1;
  profile.reorder_prob = 0.15;
  return profile;
}

struct ChaosOutcome {
  std::size_t delivered{0};
  bool in_order{true};
  std::uint64_t server_delivered{0};
  std::uint64_t retransmissions{0};
  std::uint64_t fast_retransmits{0};
  sim::FaultStats faults{};
};

ChaosOutcome run_chaos(std::uint64_t seed, int total_frames) {
  Testbed testbed{seed};
  testbed.medium().configure(reliable_bluetooth());
  auto& client = testbed.add_node("a", {0.0, 0.0},
                                  fast_node(MobilityClass::kDynamic));
  auto& server = testbed.add_node("s", {4.0, 0.0},
                                  fast_node(MobilityClass::kStatic));

  std::vector<Bytes> received;
  std::unique_ptr<ReliableChannel> server_rel;
  (void)server.library().register_service(
      ServiceInfo{"rel", "", 0},
      [&](ChannelPtr channel, const wire::ConnectRequest&) {
        server_rel = std::make_unique<ReliableChannel>(testbed.sim(), channel);
        server_rel->set_data_handler(
            [&received](const Bytes& frame) { received.push_back(frame); });
      });
  testbed.run_discovery_rounds(3);
  auto result = client.connect_blocking(server.mac(), "rel");
  EXPECT_TRUE(result.ok()) << result.error().to_string();
  if (!result.ok()) return {};
  ReliableChannel client_rel{testbed.sim(), result.value()};

  // Faults start only now: the session is established and discovery has
  // converged, mirroring the scenario runner's fault-free warm-up.
  testbed.medium().fault_plane().set_profile(Technology::kBluetooth,
                                             chaos_profile());

  for (int i = 0; i < total_frames; ++i) {
    testbed.sim().schedule_after(seconds(0.5 * i), [&client_rel, i] {
      const auto lo = static_cast<std::uint8_t>(i & 0xff);
      const auto hi = static_cast<std::uint8_t>((i >> 8) & 0xff);
      ASSERT_TRUE(client_rel.send(Bytes{lo, hi, 0xAB}).ok());
    });
  }
  // Drain: sending takes total*0.5s; leave generous room for backoff-capped
  // retransmissions to punch the stragglers through the loss bursts.
  const double send_window_s = 0.5 * total_frames;
  const bool drained = run_until(
      testbed,
      [&] {
        return received.size() == static_cast<std::size_t>(total_frames) &&
               client_rel.unacked() == 0;
      },
      send_window_s + 240.0);
  EXPECT_TRUE(drained) << "seed " << seed << ": delivered "
                       << received.size() << "/" << total_frames
                       << ", unacked " << client_rel.unacked();

  ChaosOutcome outcome;
  outcome.delivered = received.size();
  for (std::size_t i = 0; i < received.size(); ++i) {
    const auto lo = static_cast<std::uint8_t>(i & 0xff);
    const auto hi = static_cast<std::uint8_t>((i >> 8) & 0xff);
    if (received[i] != Bytes{lo, hi, 0xAB}) outcome.in_order = false;
  }
  outcome.server_delivered = server_rel ? server_rel->delivered_count() : 0;
  outcome.retransmissions = client_rel.retransmissions();
  outcome.fast_retransmits = client_rel.fast_retransmits();
  outcome.faults = testbed.medium().fault_plane().stats();
  client_rel.shutdown();
  if (server_rel) server_rel->shutdown();
  return outcome;
}

TEST(ReliableChaos, ExactlyOnceInOrderAcrossSeeds) {
  constexpr int kFrames = 40;
  std::uint64_t total_loss = 0;
  std::uint64_t total_retransmissions = 0;
  for (const std::uint64_t seed : {21u, 22u, 23u, 24u, 25u}) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    const ChaosOutcome outcome = run_chaos(seed, kFrames);
    EXPECT_EQ(outcome.delivered, static_cast<std::size_t>(kFrames));
    EXPECT_TRUE(outcome.in_order);
    // Exactly-once: the receiver counted each sequence number a single time
    // even though the medium duplicated and replayed frames.
    EXPECT_EQ(outcome.server_delivered, static_cast<std::uint64_t>(kFrames));
    // Bounded recovery effort: retransmissions scale with the frame count,
    // they do not run away (each frame is retried, not flooded).
    EXPECT_LE(outcome.retransmissions, static_cast<std::uint64_t>(kFrames) * 8);
    total_loss += outcome.faults.loss_drops;
    total_retransmissions += outcome.retransmissions;
  }
  // The fault plane actually fired: across five seeds the bursty channel
  // must have dropped frames and forced recoveries.
  EXPECT_GT(total_loss, 0u);
  EXPECT_GT(total_retransmissions, 0u);
}

TEST(ReliableChaos, SameSeedReplaysIdentically) {
  const ChaosOutcome first = run_chaos(99, 25);
  const ChaosOutcome second = run_chaos(99, 25);
  EXPECT_EQ(first.delivered, second.delivered);
  EXPECT_EQ(first.retransmissions, second.retransmissions);
  EXPECT_EQ(first.fast_retransmits, second.fast_retransmits);
  EXPECT_EQ(first.faults.frames_seen, second.faults.frames_seen);
  EXPECT_EQ(first.faults.loss_drops, second.faults.loss_drops);
  EXPECT_EQ(first.faults.corrupted, second.faults.corrupted);
  EXPECT_EQ(first.faults.duplicated, second.faults.duplicated);
  EXPECT_EQ(first.faults.reordered, second.faults.reordered);
  EXPECT_EQ(first.faults.burst_entries, second.faults.burst_entries);
}

}  // namespace
}  // namespace peerhood
