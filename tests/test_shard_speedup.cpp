// Wall-clock scaling regression for the sharded core (this PR's headline
// number): the 100k-endpoint corridor workload at shards=8 must beat
// shards=1 by >= 2x — half the bench's 4x target, so scheduler noise and a
// loaded CI box don't flake the suite. Skips itself below 4 hardware
// threads, where there is no parallelism to regress.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <thread>

#include "common/sim_time.hpp"
#include "sim/shard.hpp"
#include "sim/sharded_medium.hpp"

namespace peerhood::sim {
namespace {

struct RunResult {
  double wall_ms{0.0};
  std::uint64_t frames{0};
};

// The bench_medium_scale E-shard workload: static endpoints 5 m apart in a
// corridor, per-endpoint tick chains every 250 ms on the owner shard, a
// frame to the right-hand neighbour every 4th tick.
RunResult run_corridor(int n, std::uint32_t shards, double sim_seconds) {
  constexpr double kSpacing = 5.0;
  ShardedSimulator core{/*seed=*/7, shards};
  ShardedMediumConfig config;
  config.world_max_x = kSpacing * n;
  ShardedMedium medium{core, config};

  for (int i = 0; i < n; ++i) {
    const MacAddress mac =
        MacAddress::from_index(static_cast<std::uint64_t>(i) + 1);
    const Vec2 pos{(i + 0.5) * kSpacing, 0.0};
    medium.register_endpoint(mac, Technology::kBluetooth,
                             std::make_shared<StaticPosition>(pos),
                             [](MacAddress, const Bytes&) {});
  }
  for (int i = 0; i < n; ++i) {
    const MacAddress mac =
        MacAddress::from_index(static_cast<std::uint64_t>(i) + 1);
    const MacAddress next =
        MacAddress::from_index(static_cast<std::uint64_t>(i) + 2);
    Simulator* sim = &medium.owner_sim(mac);
    const bool has_next = i + 1 < n;
    auto tick = std::make_shared<std::function<void()>>();
    auto ticks = std::make_shared<std::uint64_t>(0);
    *tick = [&medium, sim, mac, next, has_next, tick, ticks] {
      volatile std::uint64_t draw = sim->rng().next_u64();
      (void)draw;
      if (has_next && (*ticks)++ % 4 == 0) {
        medium.send_frame(mac, next, Technology::kBluetooth, Bytes(32, 0xab));
      }
      sim->schedule_after(milliseconds(250), [tick] { (*tick)(); });
    };
    sim->schedule_at(SimTime{} + milliseconds(i % 250), [tick] { (*tick)(); });
  }

  using Clock = std::chrono::steady_clock;
  const auto begin = Clock::now();
  core.run_for(seconds(sim_seconds));
  const auto end = Clock::now();
  return {std::chrono::duration<double, std::milli>(end - begin).count(),
          medium.merged_stats().frames};
}

TEST(ShardSpeedup, EightShardsBeatTwoXOnMultiCoreHardware) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4) {
    GTEST_SKIP() << "only " << hw
                 << " hardware threads; no parallelism to measure";
  }
  constexpr int kNodes = 100'000;
  constexpr double kSimSeconds = 2.0;
  // Best-of-two absorbs a one-off scheduler hiccup on either side.
  RunResult base = run_corridor(kNodes, 1, kSimSeconds);
  RunResult sharded = run_corridor(kNodes, 8, kSimSeconds);
  const RunResult base2 = run_corridor(kNodes, 1, kSimSeconds);
  const RunResult sharded2 = run_corridor(kNodes, 8, kSimSeconds);
  base.wall_ms = std::min(base.wall_ms, base2.wall_ms);
  sharded.wall_ms = std::min(sharded.wall_ms, sharded2.wall_ms);

  // Equal work first — a speedup from dropped frames is a bug, not a win.
  ASSERT_GT(base.frames, 0u);
  ASSERT_EQ(base.frames, sharded.frames);

  const double scaling = base.wall_ms / sharded.wall_ms;
  RecordProperty("wall_ms_1shard", static_cast<int>(base.wall_ms));
  RecordProperty("wall_ms_8shards", static_cast<int>(sharded.wall_ms));
  EXPECT_GE(scaling, 2.0) << "shards=1 " << base.wall_ms << " ms, shards=8 "
                          << sharded.wall_ms << " ms";
}

}  // namespace
}  // namespace peerhood::sim
