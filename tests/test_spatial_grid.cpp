#include "sim/spatial_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/medium.hpp"

namespace peerhood::sim {
namespace {

// --- SpatialGrid in isolation ----------------------------------------------

std::vector<std::uint64_t> block_ids(const SpatialGrid& grid, Vec2 origin) {
  std::vector<std::uint64_t> ids;
  grid.visit_block(origin,
                   [&](const SpatialGrid::Entry& e) { ids.push_back(e.id); });
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(SpatialGrid, InsertRemoveContains) {
  SpatialGrid grid{10.0};
  EXPECT_EQ(grid.size(), 0u);
  grid.insert(1, {0.0, 0.0}, nullptr);
  grid.insert(2, {5.0, 5.0}, nullptr);
  EXPECT_EQ(grid.size(), 2u);
  EXPECT_TRUE(grid.contains(1));
  EXPECT_TRUE(grid.remove(1));
  EXPECT_FALSE(grid.contains(1));
  EXPECT_FALSE(grid.remove(1));
  EXPECT_EQ(grid.size(), 1u);
  grid.clear();
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_FALSE(grid.contains(2));
}

TEST(SpatialGrid, ReinsertMovesEntry) {
  SpatialGrid grid{10.0};
  grid.insert(7, {0.0, 0.0}, nullptr);
  // Move far away: the old bucket must no longer report the entry.
  grid.insert(7, {500.0, 500.0}, nullptr);
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_TRUE(block_ids(grid, {0.0, 0.0}).empty());
  EXPECT_EQ(block_ids(grid, {500.0, 500.0}), std::vector<std::uint64_t>{7});
}

TEST(SpatialGrid, BlockCoversRadiusIncludingNegativeCells) {
  SpatialGrid grid{10.0};
  // Points exactly `cell_size` away in every direction, straddling the cell
  // boundaries around the origin (including negative coordinates).
  grid.insert(1, {10.0, 0.0}, nullptr);
  grid.insert(2, {-10.0, 0.0}, nullptr);
  grid.insert(3, {0.0, 10.0}, nullptr);
  grid.insert(4, {0.0, -10.0}, nullptr);
  grid.insert(5, {-7.0, -7.0}, nullptr);
  grid.insert(6, {35.0, 0.0}, nullptr);  // beyond the 3x3 block
  const auto ids = block_ids(grid, {0.0, 0.0});
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(SpatialGrid, UpdateMovesEntryAcrossCells) {
  SpatialGrid grid{10.0};
  EXPECT_FALSE(grid.update(7, {1.0, 1.0}));  // unknown id
  int payload = 0;
  grid.insert(7, {0.0, 0.0}, &payload);

  // Same-cell move: position rewritten in place.
  EXPECT_TRUE(grid.update(7, {3.0, 4.0}));
  bool seen = false;
  grid.visit_block({0.0, 0.0}, [&](const SpatialGrid::Entry& e) {
    seen = true;
    EXPECT_EQ(e.position, (Vec2{3.0, 4.0}));
    EXPECT_EQ(e.payload, &payload);
  });
  EXPECT_TRUE(seen);

  // Cross-cell move: old bucket emptied, payload carried along.
  EXPECT_TRUE(grid.update(7, {500.0, 500.0}));
  EXPECT_TRUE(block_ids(grid, {0.0, 0.0}).empty());
  EXPECT_EQ(block_ids(grid, {500.0, 500.0}), std::vector<std::uint64_t>{7});
  grid.visit_block({500.0, 500.0}, [&](const SpatialGrid::Entry& e) {
    EXPECT_EQ(e.payload, &payload);
  });
  EXPECT_EQ(grid.size(), 1u);
}

TEST(SpatialGrid, SetCellSizeClears) {
  SpatialGrid grid{10.0};
  grid.insert(1, {0.0, 0.0}, nullptr);
  grid.set_cell_size(50.0);
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_DOUBLE_EQ(grid.cell_size(), 50.0);
}

// --- Grid-backed medium vs brute-force oracle --------------------------------

class GridParityTest : public ::testing::Test {
 protected:
  GridParityTest() : sim_{2024}, medium_{sim_} {}

  MacAddress add(std::uint64_t index,
                 std::shared_ptr<const MobilityModel> mobility,
                 Technology tech = Technology::kBluetooth) {
    const MacAddress mac = MacAddress::from_index(index);
    medium_.register_endpoint(mac, tech, std::move(mobility), nullptr);
    macs_[static_cast<std::size_t>(tech)].push_back(mac);
    return mac;
  }

  void expect_parity(Technology tech) {
    for (const MacAddress mac : macs_[static_cast<std::size_t>(tech)]) {
      EXPECT_EQ(medium_.in_range_of(mac, tech),
                medium_.in_range_of_brute(mac, tech))
          << "query origin " << mac.to_string() << " at t="
          << sim_.now().seconds() << "s";
    }
  }

  Simulator sim_;
  RadioMedium medium_;
  std::array<std::vector<MacAddress>, kTechnologyCount> macs_;
};

TEST_F(GridParityTest, RandomizedMovingNodesManySimTimes) {
  Rng rng = sim_.fork_rng();
  for (std::uint64_t i = 1; i <= 90; ++i) {
    const Vec2 start{rng.uniform(-70.0, 70.0), rng.uniform(-70.0, 70.0)};
    std::shared_ptr<const MobilityModel> model;
    switch (i % 3) {
      case 0:
        model = std::make_shared<StaticPosition>(start);
        break;
      case 1:
        model = std::make_shared<LinearMotion>(
            start, Vec2{rng.uniform(-2.5, 2.5), rng.uniform(-2.5, 2.5)});
        break;
      default: {
        RandomWaypoint::Config config;
        config.area_min = {-70.0, -70.0};
        config.area_max = {70.0, 70.0};
        model = std::make_shared<RandomWaypoint>(config, start,
                                                 sim_.fork_rng());
        break;
      }
    }
    add(i, std::move(model),
        i % 2 == 0 ? Technology::kWlan : Technology::kBluetooth);
  }
  for (int step = 0; step < 20; ++step) {
    sim_.run_until(sim_.now() + seconds(3.3));
    expect_parity(Technology::kBluetooth);
    expect_parity(Technology::kWlan);
  }
}

TEST_F(GridParityTest, PointQueriesBetweenTicksDoNotDesyncTheGrid) {
  // position_of / in_range re-sample the position cache without refreshing
  // the grid; the incremental refresh must still detect the move (it
  // compares against the entry's recorded grid position, not the cache).
  const MacAddress mover =
      add(1, std::make_shared<LinearMotion>(Vec2{0.0, 0.0}, Vec2{2.0, 0.0}));
  add(2, std::make_shared<StaticPosition>(Vec2{9.0, 0.0}));
  add(3, std::make_shared<StaticPosition>(Vec2{30.0, 0.0}));
  expect_parity(Technology::kBluetooth);  // grid built at t=0
  for (int step = 0; step < 12; ++step) {
    sim_.run_until(sim_.now() + seconds(2.0));
    // Point query first: refreshes the mover's cached position only.
    (void)medium_.position_of(mover, Technology::kBluetooth);
    (void)medium_.distance(mover, MacAddress::from_index(3),
                           Technology::kBluetooth);
    // Neighbour query second: the incremental refresh must move the entry.
    expect_parity(Technology::kBluetooth);
  }
}

TEST_F(GridParityTest, AllStaticDeploymentStaysExact) {
  // With no mobile endpoints the stale grid revalidates in O(1); results
  // must still match the brute oracle at every time step, including around
  // register/unregister while time advances.
  Rng rng = sim_.fork_rng();
  for (std::uint64_t i = 1; i <= 40; ++i) {
    add(i, std::make_shared<StaticPosition>(
               Vec2{rng.uniform(-40.0, 40.0), rng.uniform(-40.0, 40.0)}));
  }
  for (int step = 0; step < 6; ++step) {
    sim_.run_until(sim_.now() + seconds(1.0));
    expect_parity(Technology::kBluetooth);
  }
  medium_.unregister_endpoint(MacAddress::from_index(7),
                              Technology::kBluetooth);
  macs_[static_cast<std::size_t>(Technology::kBluetooth)].erase(
      std::remove(macs_[static_cast<std::size_t>(Technology::kBluetooth)]
                      .begin(),
                  macs_[static_cast<std::size_t>(Technology::kBluetooth)]
                      .end(),
                  MacAddress::from_index(7)),
      macs_[static_cast<std::size_t>(Technology::kBluetooth)].end());
  sim_.run_until(sim_.now() + seconds(1.0));
  add(41, std::make_shared<StaticPosition>(Vec2{0.0, 0.0}));
  expect_parity(Technology::kBluetooth);
}

TEST_F(GridParityTest, NodeExactlyAtRangeIsIncluded) {
  const MacAddress a =
      add(1, std::make_shared<StaticPosition>(Vec2{0.0, 0.0}));
  // Bluetooth range is exactly 10 m; boundary nodes in several directions,
  // including negative coordinates and cell-edge positions.
  add(2, std::make_shared<StaticPosition>(Vec2{10.0, 0.0}));
  add(3, std::make_shared<StaticPosition>(Vec2{-10.0, 0.0}));
  add(4, std::make_shared<StaticPosition>(Vec2{0.0, -10.0}));
  add(5, std::make_shared<StaticPosition>(Vec2{-6.0, -8.0}));  // dist 10
  add(6, std::make_shared<StaticPosition>(Vec2{10.001, 0.0}));  // just out
  const auto neighbours = medium_.in_range_of(a, Technology::kBluetooth);
  EXPECT_EQ(neighbours.size(), 4u);
  EXPECT_EQ(neighbours, medium_.in_range_of_brute(a, Technology::kBluetooth));
  EXPECT_TRUE(medium_.in_range(a, MacAddress::from_index(5),
                               Technology::kBluetooth));
  EXPECT_FALSE(medium_.in_range(a, MacAddress::from_index(6),
                                Technology::kBluetooth));
}

TEST_F(GridParityTest, NegativeCoordinatesParity) {
  const MacAddress a =
      add(1, std::make_shared<StaticPosition>(Vec2{-55.0, -55.0}));
  add(2, std::make_shared<StaticPosition>(Vec2{-62.0, -55.0}));
  add(3, std::make_shared<StaticPosition>(Vec2{-55.0, -48.0}));
  add(4, std::make_shared<StaticPosition>(Vec2{-70.0, -70.0}));
  const auto neighbours = medium_.in_range_of(a, Technology::kBluetooth);
  EXPECT_EQ(neighbours.size(), 2u);
  EXPECT_EQ(neighbours, medium_.in_range_of_brute(a, Technology::kBluetooth));
}

TEST_F(GridParityTest, RegisterWhileGridCachedSameTick) {
  const MacAddress a =
      add(1, std::make_shared<StaticPosition>(Vec2{0.0, 0.0}));
  add(2, std::make_shared<StaticPosition>(Vec2{5.0, 0.0}));
  // First query builds the grid for the current sim time.
  EXPECT_EQ(medium_.in_range_of(a, Technology::kBluetooth).size(), 1u);
  // Register another neighbour without advancing the clock: the cached grid
  // must pick it up incrementally.
  add(3, std::make_shared<StaticPosition>(Vec2{0.0, 5.0}));
  const auto neighbours = medium_.in_range_of(a, Technology::kBluetooth);
  EXPECT_EQ(neighbours.size(), 2u);
  EXPECT_EQ(neighbours, medium_.in_range_of_brute(a, Technology::kBluetooth));
}

TEST_F(GridParityTest, UnregisterWhileGridCachedSameTick) {
  const MacAddress a =
      add(1, std::make_shared<StaticPosition>(Vec2{0.0, 0.0}));
  const MacAddress b =
      add(2, std::make_shared<StaticPosition>(Vec2{5.0, 0.0}));
  add(3, std::make_shared<StaticPosition>(Vec2{0.0, 5.0}));
  EXPECT_EQ(medium_.in_range_of(a, Technology::kBluetooth).size(), 2u);
  medium_.unregister_endpoint(b, Technology::kBluetooth);
  const auto neighbours = medium_.in_range_of(a, Technology::kBluetooth);
  EXPECT_EQ(neighbours.size(), 1u);
  EXPECT_EQ(neighbours, medium_.in_range_of_brute(a, Technology::kBluetooth));
}

TEST_F(GridParityTest, ReRegisterMovesEndpointSameTick) {
  const MacAddress a =
      add(1, std::make_shared<StaticPosition>(Vec2{0.0, 0.0}));
  const MacAddress b =
      add(2, std::make_shared<StaticPosition>(Vec2{500.0, 0.0}));
  EXPECT_TRUE(medium_.in_range_of(a, Technology::kBluetooth).empty());
  // Re-registration teleports b next to a; the cached grid must move it.
  medium_.register_endpoint(b, Technology::kBluetooth,
                            std::make_shared<StaticPosition>(Vec2{3.0, 0.0}),
                            nullptr);
  const auto neighbours = medium_.in_range_of(a, Technology::kBluetooth);
  ASSERT_EQ(neighbours.size(), 1u);
  EXPECT_EQ(neighbours[0], b);
  EXPECT_EQ(neighbours, medium_.in_range_of_brute(a, Technology::kBluetooth));
}

TEST_F(GridParityTest, ConfigureNewRangeInvalidatesGrid) {
  const MacAddress a =
      add(1, std::make_shared<StaticPosition>(Vec2{0.0, 0.0}));
  add(2, std::make_shared<StaticPosition>(Vec2{30.0, 0.0}));
  EXPECT_TRUE(medium_.in_range_of(a, Technology::kBluetooth).empty());
  TechnologyParams wide = bluetooth_params();
  wide.range_m = 40.0;
  medium_.configure(wide);
  const auto neighbours = medium_.in_range_of(a, Technology::kBluetooth);
  EXPECT_EQ(neighbours.size(), 1u);
  EXPECT_EQ(neighbours, medium_.in_range_of_brute(a, Technology::kBluetooth));
}

TEST_F(GridParityTest, FastMoverCrossesCellsOverTime) {
  const MacAddress a =
      add(1, std::make_shared<StaticPosition>(Vec2{0.0, 0.0}));
  // Starts two cells away, drives straight through a's cell and out again.
  const MacAddress b = add(
      2, std::make_shared<LinearMotion>(Vec2{-25.0, 0.0}, Vec2{5.0, 0.0}));
  bool seen_in_range = false;
  bool seen_out_after = false;
  for (int step = 0; step < 12; ++step) {
    sim_.run_until(sim_.now() + seconds(1.0));
    const auto neighbours = medium_.in_range_of(a, Technology::kBluetooth);
    EXPECT_EQ(neighbours,
              medium_.in_range_of_brute(a, Technology::kBluetooth));
    const bool in_now =
        std::find(neighbours.begin(), neighbours.end(), b) != neighbours.end();
    seen_in_range = seen_in_range || in_now;
    if (seen_in_range && !in_now) seen_out_after = true;
  }
  EXPECT_TRUE(seen_in_range);
  EXPECT_TRUE(seen_out_after);
}

TEST_F(GridParityTest, DiscoverableFilteringMatchesAfterTimeAdvance) {
  const MacAddress a =
      add(1, std::make_shared<StaticPosition>(Vec2{0.0, 0.0}));
  const MacAddress b =
      add(2, std::make_shared<StaticPosition>(Vec2{4.0, 0.0}));
  add(3, std::make_shared<StaticPosition>(Vec2{0.0, 4.0}));
  sim_.run_until(sim_.now() + seconds(5.0));
  medium_.set_discoverable(b, Technology::kBluetooth, false);
  const auto discoverable =
      medium_.discoverable_in_range(a, Technology::kBluetooth);
  ASSERT_EQ(discoverable.size(), 1u);
  EXPECT_EQ(discoverable[0], MacAddress::from_index(3));
}

}  // namespace
}  // namespace peerhood::sim
