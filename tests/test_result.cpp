#include "common/result.hpp"

#include <gtest/gtest.h>

#include <string>

namespace peerhood {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r{42};
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> r{Error{ErrorCode::kTimeout, "too slow"}};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kTimeout);
  EXPECT_EQ(r.error().message, "too slow");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r{std::string("payload")};
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Result, ErrorToString) {
  const Error e{ErrorCode::kNoRoute, "no bridge"};
  EXPECT_EQ(e.to_string(), "no_route: no bridge");
  const Error bare{ErrorCode::kConnectionFailed, ""};
  EXPECT_EQ(bare.to_string(), "connection_failed");
}

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
}

TEST(Status, CarriesError) {
  const Status s{ErrorCode::kCapacityExceeded, "bridge full"};
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kCapacityExceeded);
}

TEST(ErrorCode, AllCodesHaveNames) {
  for (const ErrorCode code :
       {ErrorCode::kOk, ErrorCode::kTimeout, ErrorCode::kConnectionFailed,
        ErrorCode::kConnectionClosed, ErrorCode::kNoRoute,
        ErrorCode::kNoSuchDevice, ErrorCode::kNoSuchService,
        ErrorCode::kProtocolError, ErrorCode::kCapacityExceeded,
        ErrorCode::kCancelled, ErrorCode::kInvalidArgument}) {
    EXPECT_STRNE(to_string(code), "unknown");
  }
}

}  // namespace
}  // namespace peerhood
