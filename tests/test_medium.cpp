#include "sim/medium.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace peerhood::sim {
namespace {

class MediumTest : public ::testing::Test {
 protected:
  MediumTest() : sim_{77}, medium_{sim_} {}

  MacAddress add(std::uint64_t index, Vec2 position,
                 Technology tech = Technology::kBluetooth) {
    const MacAddress mac = MacAddress::from_index(index);
    medium_.register_endpoint(
        mac, tech, std::make_shared<StaticPosition>(position),
        [this, mac](MacAddress from, const Bytes& frame) {
          received_.push_back({mac, from, frame});
        });
    return mac;
  }

  struct Received {
    MacAddress to;
    MacAddress from;
    Bytes frame;
  };

  Simulator sim_;
  RadioMedium medium_;
  std::vector<Received> received_;
};

TEST_F(MediumTest, InRangeByDistance) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {5.0, 0.0});
  const MacAddress c = add(3, {15.0, 0.0});
  EXPECT_TRUE(medium_.in_range(a, b, Technology::kBluetooth));
  EXPECT_FALSE(medium_.in_range(a, c, Technology::kBluetooth));
  EXPECT_TRUE(medium_.in_range(b, c, Technology::kBluetooth));
}

TEST_F(MediumTest, InRangeOfExcludesSelf) {
  const MacAddress a = add(1, {0.0, 0.0});
  add(2, {3.0, 0.0});
  add(3, {6.0, 0.0});
  add(4, {30.0, 0.0});
  const auto neighbours = medium_.in_range_of(a, Technology::kBluetooth);
  EXPECT_EQ(neighbours.size(), 2u);
  EXPECT_EQ(std::count(neighbours.begin(), neighbours.end(), a), 0);
}

TEST_F(MediumTest, TechnologiesAreIsolated) {
  const MacAddress a = add(1, {0.0, 0.0}, Technology::kBluetooth);
  const MacAddress b = add(2, {5.0, 0.0}, Technology::kWlan);
  EXPECT_FALSE(medium_.in_range(a, b, Technology::kBluetooth));
  EXPECT_TRUE(medium_.in_range_of(a, Technology::kWlan).empty());
}

TEST_F(MediumTest, DiscoverableInRangeHonoursFlags) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {3.0, 0.0});
  const MacAddress c = add(3, {6.0, 0.0});

  auto discoverable = medium_.discoverable_in_range(a, Technology::kBluetooth);
  EXPECT_EQ(discoverable.size(), 2u);

  medium_.set_discoverable(b, Technology::kBluetooth, false);
  discoverable = medium_.discoverable_in_range(a, Technology::kBluetooth);
  ASSERT_EQ(discoverable.size(), 1u);
  EXPECT_EQ(discoverable[0], c);
}

TEST_F(MediumTest, BluetoothInquiryAsymmetry) {
  // §3.4.2: a device that is searching is itself not discoverable.
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {3.0, 0.0});
  medium_.set_inquiring(b, Technology::kBluetooth, true);
  EXPECT_TRUE(
      medium_.discoverable_in_range(a, Technology::kBluetooth).empty());
  medium_.set_inquiring(b, Technology::kBluetooth, false);
  EXPECT_EQ(medium_.discoverable_in_range(a, Technology::kBluetooth).size(),
            1u);
}

TEST_F(MediumTest, WlanHasNoInquiryAsymmetry) {
  const MacAddress a = add(1, {0.0, 0.0}, Technology::kWlan);
  const MacAddress b = add(2, {10.0, 0.0}, Technology::kWlan);
  medium_.set_inquiring(b, Technology::kWlan, true);
  EXPECT_EQ(medium_.discoverable_in_range(a, Technology::kWlan).size(), 1u);
}

TEST_F(MediumTest, PeerhoodTagDefaultsTrue) {
  const MacAddress a = add(1, {0.0, 0.0});
  EXPECT_TRUE(medium_.peerhood_tag(a, Technology::kBluetooth));
  medium_.set_peerhood_tag(a, Technology::kBluetooth, false);
  EXPECT_FALSE(medium_.peerhood_tag(a, Technology::kBluetooth));
}

TEST_F(MediumTest, QualityDecreasesWithDistance) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {2.0, 0.0});
  const MacAddress c = add(3, {9.0, 0.0});
  EXPECT_GT(medium_.expected_quality(a, b, Technology::kBluetooth),
            medium_.expected_quality(a, c, Technology::kBluetooth));
  EXPECT_EQ(medium_.expected_quality(a, MacAddress::from_index(99),
                                     Technology::kBluetooth),
            0);
}

TEST_F(MediumTest, FrameDeliveredInRange) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {5.0, 0.0});
  medium_.send_frame(a, b, Technology::kBluetooth, Bytes{1, 2, 3});
  sim_.run_all();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].to, b);
  EXPECT_EQ(received_[0].from, a);
  EXPECT_EQ(received_[0].frame, (Bytes{1, 2, 3}));
  EXPECT_EQ(medium_.stats().frames, 1u);
  EXPECT_EQ(medium_.stats().drops, 0u);
}

TEST_F(MediumTest, FrameDroppedOutOfRange) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {50.0, 0.0});
  medium_.send_frame(a, b, Technology::kBluetooth, Bytes{1});
  sim_.run_all();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(medium_.stats().drops, 1u);
}

TEST_F(MediumTest, DeliveryHasLatency) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {5.0, 0.0});
  medium_.send_frame(a, b, Technology::kBluetooth, Bytes{1});
  EXPECT_TRUE(received_.empty());  // not synchronous
  sim_.run_all();
  EXPECT_EQ(received_.size(), 1u);
  EXPECT_GE(sim_.now().seconds(), 0.030);  // at least per-hop latency
}

TEST_F(MediumTest, LargeFramesTakeLonger) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {5.0, 0.0});
  medium_.send_frame(a, b, Technology::kBluetooth, Bytes(100'000, 0));
  sim_.run_all();
  // 100 kB at 100 kB/s ≈ 1 s transmission time.
  EXPECT_GE(sim_.now().seconds(), 1.0);
}

TEST_F(MediumTest, InOrderDeliveryPerDirection) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {5.0, 0.0});
  for (std::uint8_t i = 0; i < 20; ++i) {
    medium_.send_frame(a, b, Technology::kBluetooth, Bytes{i});
  }
  sim_.run_all();
  ASSERT_EQ(received_.size(), 20u);
  for (std::uint8_t i = 0; i < 20; ++i) {
    EXPECT_EQ(received_[i].frame[0], i);
  }
}

TEST_F(MediumTest, DropWhenReceiverMovesAwayBeforeDelivery) {
  const MacAddress a = add(1, {0.0, 0.0});
  // b walks away fast: in range at send time, out of range at delivery.
  const MacAddress b = MacAddress::from_index(2);
  medium_.register_endpoint(
      b, Technology::kBluetooth,
      std::make_shared<LinearMotion>(Vec2{9.9, 0.0}, Vec2{300.0, 0.0}),
      [this, b](MacAddress from, const Bytes& frame) {
        received_.push_back({b, from, frame});
      });
  medium_.send_frame(a, b, Technology::kBluetooth, Bytes(50'000, 0));
  sim_.run_all();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(medium_.stats().drops, 1u);
}

TEST_F(MediumTest, UnregisteredReceiverDrops) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {5.0, 0.0});
  medium_.send_frame(a, b, Technology::kBluetooth, Bytes{1});
  medium_.unregister_endpoint(b, Technology::kBluetooth);
  sim_.run_all();
  EXPECT_TRUE(received_.empty());
}

TEST_F(MediumTest, PositionTracksMobility) {
  const MacAddress m = MacAddress::from_index(5);
  medium_.register_endpoint(
      m, Technology::kBluetooth,
      std::make_shared<LinearMotion>(Vec2{0.0, 0.0}, Vec2{1.0, 0.0}),
      nullptr);
  sim_.schedule_after(seconds(10.0), [] {});
  sim_.run_all();
  const auto pos = medium_.position_of(m, Technology::kBluetooth);
  ASSERT_TRUE(pos.has_value());
  EXPECT_DOUBLE_EQ(pos->x, 10.0);
}

TEST_F(MediumTest, SharedFrameDeliversWithoutCopy) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {5.0, 0.0});
  const auto payload = std::make_shared<const Bytes>(Bytes{4, 5, 6});
  medium_.send_frame(a, b, Technology::kBluetooth, payload);
  sim_.run_all();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].frame, *payload);
  // The delivery event held a reference, not a copy; after delivery only the
  // test's handle remains.
  EXPECT_EQ(payload.use_count(), 1);
}

TEST_F(MediumTest, AgeLastDeliveryEvictsPastEntries) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {5.0, 0.0});
  medium_.send_frame(a, b, Technology::kBluetooth, Bytes{1});
  medium_.send_frame(b, a, Technology::kBluetooth, Bytes{2});
  EXPECT_EQ(medium_.last_delivery_entries(), 2u);
  sim_.run_all();  // clock passes both delivery times
  sim_.run_for(seconds(1.0));
  medium_.age_last_delivery();
  EXPECT_EQ(medium_.last_delivery_entries(), 0u);
  ASSERT_EQ(received_.size(), 2u);
}

TEST_F(MediumTest, AgeLastDeliveryKeepsPendingEntries) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {5.0, 0.0});
  medium_.send_frame(a, b, Technology::kBluetooth, Bytes{1});
  // Delivery is still in the future; the entry must survive a sweep so
  // in-order bumping keeps working for this direction.
  medium_.age_last_delivery();
  EXPECT_EQ(medium_.last_delivery_entries(), 1u);
  medium_.send_frame(a, b, Technology::kBluetooth, Bytes{2});
  sim_.run_all();
  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(received_[0].frame[0], 1);
  EXPECT_EQ(received_[1].frame[0], 2);
}

TEST_F(MediumTest, LastDeliveryMapStaysBoundedOverManyPairs) {
  // Many short-lived (from,to) pairs across advancing time: the automatic
  // high-water sweep must keep the map from growing monotonically.
  constexpr int kNodes = 40;
  std::vector<MacAddress> macs;
  for (int i = 1; i <= kNodes; ++i) {
    macs.push_back(add(static_cast<std::uint64_t>(i),
                       {static_cast<double>(i % 8), double(i / 8)}));
  }
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < kNodes; ++i) {
      medium_.send_frame(macs[static_cast<std::size_t>(i)],
                         macs[static_cast<std::size_t>((i + round + 1) % kNodes)],
                         Technology::kBluetooth, Bytes{1});
    }
    sim_.run_all();
    sim_.run_for(seconds(1.0));
  }
  // 30 rounds × 40 distinct directed pairs ≈ 1200 lifetime pairs; the sweep
  // keeps the live map well below that.
  EXPECT_LT(medium_.last_delivery_entries(), 300u);
}

}  // namespace
}  // namespace peerhood::sim
