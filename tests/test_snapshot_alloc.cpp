// Proves the "zero new buffers on the cached-encode path" claim with a
// counting operator-new hook (same technique as test_event_alloc): once a
// full response has been encoded for the current generations, answering
// further requests at those generations — full, kNotModified, any requester
// — allocates nothing; the shared frame is handed out by reference count.
// This TU overrides global operator new/delete; each test source builds into
// its own binary, so the hook is scoped to this suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "peerhood/snapshot_cache.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  ++g_allocations;
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace peerhood {
namespace {

DeviceRecord neighbour(std::uint64_t index) {
  DeviceRecord record;
  record.device.mac = MacAddress::from_index(index);
  record.device.name = "neighbour-" + std::to_string(index);
  record.prototypes = {Technology::kBluetooth};
  record.services = {{"svc-" + std::to_string(index), "", 7}};
  record.quality_sum = 200;
  record.min_link_quality = 200;
  return record;
}

TEST(SnapshotCacheAllocation, RepeatSameGenerationRequestsAllocateNothing) {
  DeviceInfo self;
  self.mac = MacAddress::from_index(1);
  self.name = "responder";
  const std::vector<Technology> prototypes{Technology::kBluetooth};
  std::vector<ServiceInfo> services{{"echo", "", 4}, {"compute", "attr", 5}};
  DeviceStorage storage;
  for (std::uint64_t i = 2; i <= 17; ++i) {
    ASSERT_TRUE(storage.upsert(neighbour(i)));
  }

  SnapshotSource src;
  src.device = &self;
  src.prototypes = &prototypes;
  src.services = &services;
  src.storage = &storage;
  src.gens.device = 1;
  src.gens.prototypes = 1;
  src.gens.services = 1;
  src.gens.neighbours = storage.generation();
  src.epoch = 0xfeed;

  SnapshotCache cache;
  // Warm the cache: one encode per answer shape.
  const wire::FetchBaseline current{src.epoch, src.gens};
  auto warm_full = cache.respond({1, wire::kSectionAll, std::nullopt}, src);
  auto warm_nm = cache.respond({2, wire::kSectionAll, current}, src);
  ASSERT_NE(warm_full, nullptr);
  ASSERT_NE(warm_nm, nullptr);

  const std::uint64_t before = g_allocations.load();
  bool all_shared = true;
  for (std::uint32_t id = 3; id < 103; ++id) {
    // Full fetches from fresh requesters and conditional fetches from
    // up-to-date ones: both are shared-frame hits. (No gtest assertions in
    // the measured region — only raw pointer compares.)
    auto full = cache.respond({id, wire::kSectionAll, std::nullopt}, src);
    auto nm = cache.respond({id, wire::kSectionAll, current}, src);
    all_shared = all_shared && full.get() == warm_full.get() &&
                 nm.get() == warm_nm.get();
  }
  EXPECT_TRUE(all_shared);
  EXPECT_EQ(g_allocations.load(), before)
      << "cached-encode path must not allocate for repeat same-generation "
         "requests";

  // Sanity: a generation move does allocate (one fresh encode)...
  ASSERT_TRUE(storage.upsert(neighbour(99)));
  src.gens.neighbours = storage.generation();
  auto recoded = cache.respond({200, wire::kSectionAll, std::nullopt}, src);
  EXPECT_NE(recoded.get(), warm_full.get());
  EXPECT_GT(g_allocations.load(), before);

  // ...and the new frame is shared again without further allocation.
  const std::uint64_t after_recode = g_allocations.load();
  auto again = cache.respond({201, wire::kSectionAll, std::nullopt}, src);
  EXPECT_EQ(again.get(), recoded.get());
  EXPECT_EQ(g_allocations.load(), after_recode);
}

}  // namespace
}  // namespace peerhood
