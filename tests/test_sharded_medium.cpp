// ShardedMedium: single-vs-sharded parity of frame delivery and merged
// statistics, and endpoint shard migration (exactly-once, in-order,
// deterministic replay).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <tuple>
#include <vector>

#include "common/bytes.hpp"
#include "common/mac_address.hpp"
#include "common/sim_time.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"
#include "sim/shard.hpp"
#include "sim/sharded_medium.hpp"
#include "sim/simulator.hpp"

namespace peerhood::sim {
namespace {

using Technology = peerhood::Technology;

struct Delivery {
  std::int64_t at_us;
  std::uint64_t to;
  std::uint64_t from;
  std::uint32_t seq;

  auto operator<=>(const Delivery&) const = default;
};

Bytes seq_payload(std::uint32_t seq, std::size_t size = 32) {
  Bytes payload(size, 0);
  payload[0] = static_cast<std::uint8_t>(seq >> 24);
  payload[1] = static_cast<std::uint8_t>(seq >> 16);
  payload[2] = static_cast<std::uint8_t>(seq >> 8);
  payload[3] = static_cast<std::uint8_t>(seq);
  return payload;
}

std::uint32_t payload_seq(const Bytes& frame) {
  return (static_cast<std::uint32_t>(frame[0]) << 24) |
         (static_cast<std::uint32_t>(frame[1]) << 16) |
         (static_cast<std::uint32_t>(frame[2]) << 8) | frame[3];
}

TechnologyParams wide_bluetooth() {
  TechnologyParams p = bluetooth_params();
  p.range_m = 30.0;  // adjacent endpoints (25 m apart) are in range
  return p;
}

// 16 static endpoints striped across a 400 m world; a scripted send
// schedule mixes in-range frames (some crossing stripe boundaries) with
// out-of-range sends that must drop. Returns the sorted delivery trace.
struct ParityWorkload {
  static constexpr int kEndpoints = 16;
  static constexpr Technology kTech = Technology::kBluetooth;

  [[nodiscard]] static Vec2 position(int i) {
    return {12.5 + 25.0 * i, 0.0};
  }
  [[nodiscard]] static MacAddress mac(int i) {
    return MacAddress::from_index(static_cast<std::uint64_t>(i) + 1);
  }

  // (when, from, to, seq): every endpoint streams to its right neighbour
  // (in range; indices 3->4, 7->8, 11->12 cross stripes with 4 shards) and
  // every fourth frame also goes two hops right (50 m — dropped at send).
  [[nodiscard]] static std::vector<std::tuple<SimTime, int, int, std::uint32_t>>
  sends() {
    std::vector<std::tuple<SimTime, int, int, std::uint32_t>> out;
    std::uint32_t seq = 0;
    for (int round = 0; round < 40; ++round) {
      const SimTime at = SimTime{} + milliseconds(10 * round);
      for (int i = 0; i < kEndpoints - 1; ++i) {
        out.emplace_back(at, i, i + 1, seq++);
        if ((round + i) % 4 == 0 && i + 2 < kEndpoints) {
          out.emplace_back(at, i, i + 2, seq++);
        }
      }
    }
    return out;
  }
};

std::vector<Delivery> run_single(TrafficStats& stats_out) {
  Simulator sim{1234};
  RadioMedium medium{sim};
  medium.configure(wide_bluetooth());
  auto trace = std::make_shared<std::vector<Delivery>>();
  for (int i = 0; i < ParityWorkload::kEndpoints; ++i) {
    const MacAddress mac = ParityWorkload::mac(i);
    medium.register_endpoint(
        mac, ParityWorkload::kTech,
        std::make_shared<StaticPosition>(ParityWorkload::position(i)),
        [&sim, trace, mac](MacAddress from, const Bytes& frame) {
          trace->push_back({(sim.now() - SimTime{}).count(), mac.as_u64(),
                            from.as_u64(), payload_seq(frame)});
        });
  }
  for (const auto& [at, from, to, seq] : ParityWorkload::sends()) {
    const MacAddress f = ParityWorkload::mac(from);
    const MacAddress t = ParityWorkload::mac(to);
    sim.schedule_at(at, [&medium, f, t, seq] {
      medium.send_frame(f, t, ParityWorkload::kTech, seq_payload(seq));
    });
  }
  sim.run_until(SimTime{} + seconds(2.0));
  std::sort(trace->begin(), trace->end());
  stats_out = medium.stats();
  return *trace;
}

std::vector<Delivery> run_sharded(std::uint32_t shards,
                                  TrafficStats& stats_out,
                                  ShardedMediumStats* medium_stats = nullptr) {
  ShardedSimulator core{1234, shards};
  ShardedMedium medium{core, {.world_min_x = 0.0, .world_max_x = 400.0}};
  medium.configure(wide_bluetooth());
  // Per-shard delivery traces: a static endpoint's handler always runs on
  // its (fixed) owner shard, so each vector has exactly one writer.
  auto traces =
      std::make_shared<std::vector<std::vector<Delivery>>>(shards);
  for (int i = 0; i < ParityWorkload::kEndpoints; ++i) {
    const MacAddress mac = ParityWorkload::mac(i);
    medium.register_endpoint(
        mac, ParityWorkload::kTech,
        std::make_shared<StaticPosition>(ParityWorkload::position(i)),
        [&core, &medium, traces, mac](MacAddress from, const Bytes& frame) {
          const std::uint32_t shard = medium.owner_of(mac);
          (*traces)[shard].push_back(
              {(core.shard(shard).now() - SimTime{}).count(), mac.as_u64(),
               from.as_u64(), payload_seq(frame)});
        });
  }
  for (const auto& [at, from, to, seq] : ParityWorkload::sends()) {
    const MacAddress f = ParityWorkload::mac(from);
    const MacAddress t = ParityWorkload::mac(to);
    medium.owner_sim(f).schedule_at(at, [&medium, f, t, seq] {
      medium.send_frame(f, t, ParityWorkload::kTech, seq_payload(seq));
    });
  }
  core.run_until(SimTime{} + seconds(2.0));
  std::vector<Delivery> merged;
  for (const auto& t : *traces) {
    merged.insert(merged.end(), t.begin(), t.end());
  }
  std::sort(merged.begin(), merged.end());
  stats_out = medium.merged_stats();
  if (medium_stats != nullptr) *medium_stats = medium.stats();
  return merged;
}

TEST(ShardedMedium, FrameDeliveryAndStatsMatchSingleShard) {
  TrafficStats single_stats;
  const std::vector<Delivery> single = run_single(single_stats);
  ASSERT_FALSE(single.empty());
  EXPECT_GT(single_stats.drops, 0u);  // the 50 m sends really drop

  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    TrafficStats merged_stats;
    ShardedMediumStats medium_stats;
    const std::vector<Delivery> merged =
        run_sharded(shards, merged_stats, &medium_stats);
    EXPECT_EQ(single, merged) << "shards=" << shards;
    // The satellite contract: per-shard TrafficStats counters merge to
    // exactly the single-shard totals.
    EXPECT_EQ(single_stats.frames, merged_stats.frames);
    EXPECT_EQ(single_stats.frame_bytes, merged_stats.frame_bytes);
    EXPECT_EQ(single_stats.drops, merged_stats.drops);
    EXPECT_EQ(single_stats.inquiries, merged_stats.inquiries);
    if (shards > 1) {
      EXPECT_GT(medium_stats.remote_frames, 0u) << "shards=" << shards;
    }
    EXPECT_EQ(medium_stats.migrations, 0u);  // everything is static
  }
}

TEST(ShardedMedium, QualityStatsMergeToSingleShardTotals) {
  // One observed link per stripe, every stripe ticking at the same
  // instants: each replica's clock advances at exactly the times the
  // single simulator's does, so the merged QualityStats must be equal.
  constexpr int kStripes = 4;
  const auto mobile_mac = [](int s) {
    return MacAddress::from_index(static_cast<std::uint64_t>(s) * 2 + 1);
  };
  const auto static_mac = [](int s) {
    return MacAddress::from_index(static_cast<std::uint64_t>(s) * 2 + 2);
  };
  const auto build = [&](RadioMedium& medium, Simulator& sim, int stripe) {
    medium.register_endpoint(
        mobile_mac(stripe), Technology::kBluetooth,
        std::make_shared<LinearMotion>(Vec2{100.0 * stripe + 40.0, 0.0},
                                       Vec2{0.5, 0.0}),
        {});
    medium.register_endpoint(
        static_mac(stripe), Technology::kBluetooth,
        std::make_shared<StaticPosition>(Vec2{100.0 * stripe + 44.0, 0.0}),
        {});
    (void)medium.observe_quality(mobile_mac(stripe), static_mac(stripe),
                                 Technology::kBluetooth, {},
                                 [](const LinkQualityEvent&) {});
    for (int t = 1; t <= 30; ++t) {
      sim.schedule_at(SimTime{} + milliseconds(100 * t), [] {});
    }
  };

  QualityStats single;
  {
    Simulator sim{99};
    RadioMedium medium{sim};
    for (int s = 0; s < kStripes; ++s) build(medium, sim, s);
    sim.run_until(SimTime{} + seconds(3.5));
    single = medium.quality_stats();
  }
  ASSERT_GT(single.observer_evals, 0u);

  ShardedSimulator core{99, kStripes};
  ShardedMedium medium{core, {.world_min_x = 0.0, .world_max_x = 400.0}};
  for (int s = 0; s < kStripes; ++s) {
    build(medium.replica(static_cast<std::uint32_t>(s)),
          core.shard(static_cast<std::uint32_t>(s)), s);
  }
  core.run_until(SimTime{} + seconds(3.5));
  const QualityStats merged = medium.merged_quality_stats();
  EXPECT_EQ(single.evaluations, merged.evaluations);
  EXPECT_EQ(single.cache_hits, merged.cache_hits);
  EXPECT_EQ(single.observer_evals, merged.observer_evals);
  EXPECT_EQ(single.events_emitted, merged.events_emitted);
}

// Harness for the migration tests: a mobile endpoint exchanging steady
// bidirectional traffic with a static peer while it wanders across the
// stripe boundary. The mobile's send loop re-arms itself on the new owner
// via the migration handler.
struct MigrationRun {
  std::vector<Delivery> to_mover;    // received by the mover
  std::vector<Delivery> from_mover;  // received by the static peer
  ShardedMediumStats stats;
  std::uint32_t final_owner{0};
};

MigrationRun run_migration(std::shared_ptr<const MobilityModel> mover_path,
                           SimDuration duration) {
  constexpr Technology kTech = Technology::kBluetooth;
  const MacAddress peer = MacAddress::from_index(1);   // static, x=18
  const MacAddress mover = MacAddress::from_index(2);  // crosses x=20

  ShardedSimulator core{77, 2};
  ShardedMedium medium{core, {.world_min_x = 0.0, .world_max_x = 40.0}};

  MigrationRun result;
  // Two per-shard sinks for the mover's inbound frames (its handler runs
  // on whichever shard owns it at delivery time); merged afterwards.
  auto mover_rx = std::make_shared<std::vector<std::vector<Delivery>>>(2);
  auto peer_rx = std::make_shared<std::vector<Delivery>>();

  medium.register_endpoint(
      peer, kTech, std::make_shared<StaticPosition>(Vec2{18.0, 0.0}),
      [&core, peer_rx, peer](MacAddress from, const Bytes& frame) {
        peer_rx->push_back({(core.shard(0).now() - SimTime{}).count(),
                            peer.as_u64(), from.as_u64(),
                            payload_seq(frame)});
      });
  medium.register_endpoint(
      mover, kTech, mover_path,
      [&core, &medium, mover_rx, mover](MacAddress from,
                                        const Bytes& frame) {
        const std::uint32_t shard = medium.owner_of(mover);
        (*mover_rx)[shard].push_back(
            {(core.shard(shard).now() - SimTime{}).count(), mover.as_u64(),
             from.as_u64(), payload_seq(frame)});
      });

  // Static peer streams to the mover every 10 ms from shard 0.
  auto peer_seq = std::make_shared<std::uint32_t>(0);
  auto peer_tick = std::make_shared<std::function<void()>>();
  *peer_tick = [&core, &medium, peer, mover, peer_seq, peer_tick] {
    medium.send_frame(peer, mover, kTech, seq_payload((*peer_seq)++));
    core.shard(0).schedule_after(milliseconds(10),
                                 [peer_tick] { (*peer_tick)(); });
  };
  core.shard(0).schedule_at(SimTime{} + milliseconds(1),
                            [peer_tick] { (*peer_tick)(); });

  // The mover streams back every 10 ms from whichever shard owns it. The
  // chain self-terminates when ownership moves (the guard below) and the
  // migration handler re-arms it on the new owner.
  auto mover_seq = std::make_shared<std::uint32_t>(0);
  auto arm = std::make_shared<std::function<void(std::uint32_t, SimTime)>>();
  *arm = [&core, &medium, peer, mover, mover_seq, arm](std::uint32_t shard,
                                                       SimTime at) {
    core.shard(shard).schedule_at(at, [&core, &medium, peer, mover,
                                       mover_seq, arm, shard] {
      if (medium.owner_of(mover) != shard) return;  // migrated; chain died
      medium.send_frame(mover, peer, Technology::kBluetooth,
                        seq_payload((*mover_seq)++));
      (*arm)(shard, core.shard(shard).now() + milliseconds(10));
    });
  };
  medium.set_migration_handler(
      [arm](MacAddress, std::uint32_t, std::uint32_t to, SimTime at) {
        // Re-arm relative to the migration time: the new owner's clock may
        // trail it if that shard has been idle.
        (*arm)(to, at + milliseconds(10));
      });
  (*arm)(0, SimTime{} + milliseconds(1));

  core.run_for(duration);

  for (const auto& rx : *mover_rx) {
    result.to_mover.insert(result.to_mover.end(), rx.begin(), rx.end());
  }
  std::sort(result.to_mover.begin(), result.to_mover.end());
  result.from_mover = *peer_rx;
  result.stats = medium.stats();
  result.final_owner = medium.owner_of(mover);
  return result;
}

void expect_exactly_once_in_order(const std::vector<Delivery>& trace) {
  ASSERT_FALSE(trace.empty());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].seq, i) << "lost, duplicated or reordered at " << i;
    if (i > 0) EXPECT_LE(trace[i - 1].at_us, trace[i].at_us);
  }
}

TEST(ShardedMedium, MigrationKeepsDeliveryExactlyOnceAndInOrder) {
  // 15 m -> 27 m at 0.2 m/s: crosses the 20 m boundary (plus the 1 m
  // hysteresis margin) around t = 30 s, with traffic flowing throughout.
  auto path = std::make_shared<LinearMotion>(Vec2{15.0, 0.0}, Vec2{0.2, 0.0});
  const MigrationRun run = run_migration(path, seconds(60.0));

  EXPECT_EQ(run.stats.migrations, 1u);
  EXPECT_EQ(run.final_owner, 1u);
  EXPECT_GT(run.stats.remote_frames, 0u);    // post-migration traffic
  EXPECT_GT(run.stats.forwarded_frames, 0u); // in-flight at the flip
  expect_exactly_once_in_order(run.to_mover);
  expect_exactly_once_in_order(run.from_mover);
}

TEST(ShardedMedium, MigrationChurnIsDeterministicAcrossReplays) {
  // A zig-zag path that re-crosses the boundary four times: ownership
  // churns back and forth, and two replays must agree bit-for-bit on
  // every delivery and every counter.
  const auto make_path = [] {
    return std::make_shared<WaypointPath>(std::vector<WaypointPath::Waypoint>{
        {SimTime{}, {15.0, 0.0}},
        {SimTime{} + seconds(10.0), {27.0, 0.0}},
        {SimTime{} + seconds(20.0), {15.0, 0.0}},
        {SimTime{} + seconds(30.0), {27.0, 0.0}},
        {SimTime{} + seconds(40.0), {15.0, 0.0}},
    });
  };
  const MigrationRun a = run_migration(make_path(), seconds(45.0));
  const MigrationRun b = run_migration(make_path(), seconds(45.0));

  EXPECT_GE(a.stats.migrations, 3u);
  EXPECT_EQ(a.stats.migrations, b.stats.migrations);
  EXPECT_EQ(a.stats.remote_frames, b.stats.remote_frames);
  EXPECT_EQ(a.stats.forwarded_frames, b.stats.forwarded_frames);
  EXPECT_EQ(a.final_owner, b.final_owner);
  EXPECT_EQ(a.to_mover, b.to_mover);
  EXPECT_EQ(a.from_mover, b.from_mover);
  expect_exactly_once_in_order(a.to_mover);
  expect_exactly_once_in_order(a.from_mover);
}

}  // namespace
}  // namespace peerhood::sim
