#include "common/bytes.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace peerhood {
namespace {

TEST(Bytes, RoundTripIntegers) {
  ByteWriter writer;
  writer.u8(0xAB);
  writer.u16(0xBEEF);
  writer.u32(0xDEADBEEFu);
  writer.u64(0x0123456789ABCDEFULL);
  const Bytes data = writer.bytes();
  ASSERT_EQ(data.size(), 1u + 2u + 4u + 8u);

  ByteReader reader{data};
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u16(), 0xBEEF);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.at_end());
}

TEST(Bytes, BigEndianOnTheWire) {
  ByteWriter writer;
  writer.u16(0x0102);
  const Bytes data = writer.bytes();
  EXPECT_EQ(data[0], 0x01);
  EXPECT_EQ(data[1], 0x02);
}

TEST(Bytes, RoundTripString) {
  ByteWriter writer;
  writer.string("peerhood");
  writer.string("");
  ByteReader reader{writer.bytes()};
  EXPECT_EQ(reader.string(), "peerhood");
  EXPECT_EQ(reader.string(), "");
  EXPECT_TRUE(reader.ok());
}

TEST(Bytes, RoundTripBlob) {
  Bytes blob{1, 2, 3, 4, 5};
  ByteWriter writer;
  writer.blob(blob);
  ByteReader reader{writer.bytes()};
  EXPECT_EQ(reader.blob(), blob);
  EXPECT_TRUE(reader.ok());
}

TEST(Bytes, ReadPastEndFailsGracefully) {
  ByteWriter writer;
  writer.u16(7);
  ByteReader reader{writer.bytes()};
  (void)reader.u32();  // wants 4, only 2 available
  EXPECT_FALSE(reader.ok());
  // Subsequent reads stay failed and return zero values.
  EXPECT_EQ(reader.u8(), 0);
  EXPECT_EQ(reader.string(), "");
  EXPECT_FALSE(reader.ok());
}

TEST(Bytes, TruncatedStringFails) {
  ByteWriter writer;
  writer.u16(100);  // claims 100 bytes follow
  ByteReader reader{writer.bytes()};
  EXPECT_EQ(reader.string(), "");
  EXPECT_FALSE(reader.ok());
}

TEST(Bytes, EmptyReaderAtEnd) {
  ByteReader reader{Bytes{}};
  EXPECT_TRUE(reader.at_end());
  EXPECT_EQ(reader.remaining(), 0u);
  (void)reader.u8();
  EXPECT_FALSE(reader.ok());
}

TEST(Bytes, StringLengthCappedAtU16Max) {
  const std::string huge(70'000, 'x');
  ByteWriter writer;
  writer.string(huge);
  ByteReader reader{writer.bytes()};
  const std::string back = reader.string();
  EXPECT_EQ(back.size(), std::numeric_limits<std::uint16_t>::max());
  EXPECT_TRUE(reader.ok());
}

TEST(Bytes, RawAppendsWithoutPrefix) {
  Bytes payload{9, 8, 7};
  ByteWriter writer;
  writer.raw(payload);
  EXPECT_EQ(writer.bytes(), payload);
}

TEST(Bytes, MixedSequenceRoundTrip) {
  ByteWriter writer;
  writer.string("svc");
  writer.u8(3);
  writer.blob(Bytes{42});
  writer.u64(99);
  ByteReader reader{writer.bytes()};
  EXPECT_EQ(reader.string(), "svc");
  EXPECT_EQ(reader.u8(), 3);
  EXPECT_EQ(reader.blob(), Bytes{42});
  EXPECT_EQ(reader.u64(), 99u);
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.at_end());
}

}  // namespace
}  // namespace peerhood
