// The conditional-fetch discovery protocol (generation-versioned snapshot
// cache + delta responses), tested at the wire level:
//  * the cache serves repeat same-generation requests from one shared frame,
//  * deltas carry exactly the sections whose generation moved,
//  * kNotModified round-trips,
//  * epoch mismatch (responder restart) and generation wraparound force a
//    full / correct response,
//  * malformed and truncated frames are rejected,
//  * a randomized parity oracle: a view maintained through conditional
//    fetches (deltas + kNotModified) equals a view fetched full, after
//    arbitrary interleavings of responder mutations and fetches.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "peerhood/snapshot_cache.hpp"

namespace peerhood {
namespace {

DeviceInfo sample_device(std::uint64_t index) {
  DeviceInfo device;
  device.mac = MacAddress::from_index(index);
  device.name = "device-" + std::to_string(index);
  device.checksum = static_cast<std::uint32_t>(index * 31);
  device.mobility = MobilityClass::kStatic;
  return device;
}

// A responder: the authoritative state the daemon would own, plus the cache.
struct Responder {
  DeviceInfo self = sample_device(1);
  std::vector<Technology> prototypes{Technology::kBluetooth,
                                     Technology::kWlan};
  std::vector<ServiceInfo> services;
  std::uint32_t services_gen{1};
  DeviceStorage storage;
  std::uint64_t epoch{0x1111};
  std::uint8_t load{0};
  SnapshotCache cache;

  [[nodiscard]] SnapshotSource source() const {
    SnapshotSource src;
    src.device = &self;
    src.prototypes = &prototypes;
    src.services = &services;
    src.storage = &storage;
    src.gens.device = 1;
    src.gens.prototypes = 1;
    src.gens.services = services_gen;
    src.gens.neighbours = storage.generation();
    src.epoch = epoch;
    src.load_percent = load;
    return src;
  }

  [[nodiscard]] SnapshotCache::FramePtr answer(
      const wire::FetchRequest& request) {
    return cache.respond(request, source());
  }

  void restart() {
    epoch += 7;  // a restarted daemon mints a fresh epoch
    services_gen = 1;
    // The cache does not survive a restart in the real daemon; a fresh one
    // also proves correctness does not depend on cache continuity.
    cache = SnapshotCache{};
  }
};

// The requester's assembled view of one responder (the plugin's per-peer
// state, reduced to the protocol rules: overlay present sections, keep the
// rest; epoch change invalidates every known generation).
struct View {
  std::uint64_t epoch{0};
  wire::SectionGens gens;
  std::uint8_t known{0};
  DeviceInfo device;
  std::vector<Technology> prototypes;
  std::vector<ServiceInfo> services;
  std::vector<NeighbourSnapshotEntry> neighbours;

  [[nodiscard]] std::optional<wire::FetchBaseline> baseline(
      std::uint8_t sections) const {
    if ((known & sections) != sections) return std::nullopt;
    return wire::FetchBaseline{epoch, gens};
  }

  void apply(const wire::FetchResponse& response) {
    if (response.not_modified) return;
    if (epoch != response.epoch) {
      known = 0;
      gens = {};
      epoch = response.epoch;
    }
    if ((response.sections & wire::kSectionDevice) != 0) {
      device = response.device;
      gens.device = response.gens.device;
    }
    if ((response.sections & wire::kSectionPrototypes) != 0) {
      prototypes = response.prototypes;
      gens.prototypes = response.gens.prototypes;
    }
    if ((response.sections & wire::kSectionServices) != 0) {
      services = response.services;
      gens.services = response.gens.services;
    }
    if ((response.sections & wire::kSectionNeighbours) != 0) {
      neighbours = response.neighbours;
      gens.neighbours = response.gens.neighbours;
    }
    known |= response.sections;
  }
};

wire::FetchResponse decode_or_die(const SnapshotCache::FramePtr& frame) {
  const auto decoded = wire::decode_fetch_response(*frame);
  EXPECT_TRUE(decoded.has_value());
  return decoded.value_or(wire::FetchResponse{});
}

DeviceRecord record_for(std::uint64_t index, int jump, int quality) {
  DeviceRecord record;
  record.device = sample_device(index);
  record.prototypes = {Technology::kBluetooth};
  record.services = {{"svc-" + std::to_string(index), "", 9}};
  record.jump = jump;
  record.bridge = jump == 0 ? MacAddress{} : MacAddress::from_index(2);
  record.quality_sum = quality;
  record.min_link_quality = quality;
  return record;
}

TEST(SnapshotCache, RepeatRequestsShareOneFrame) {
  Responder responder;
  responder.services = {{"echo", "", 4}};
  ASSERT_TRUE(responder.storage.upsert(record_for(5, 0, 200)));

  const wire::FetchRequest request{1, wire::kSectionAll, std::nullopt};
  const auto first = responder.answer(request);
  const auto second = responder.answer({2, wire::kSectionAll, std::nullopt});
  // Same generations: the exact same buffer, not an equal copy.
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(responder.cache.stats().full_encodes, 1u);
  EXPECT_EQ(responder.cache.stats().full_hits, 1u);

  // Shared frames cannot echo a request id.
  EXPECT_EQ(decode_or_die(first).request_id, wire::kSharedRequestId);

  // A storage mutation moves the neighbours generation: fresh encode.
  ASSERT_TRUE(responder.storage.upsert(record_for(6, 1, 150)));
  const auto third = responder.answer({3, wire::kSectionAll, std::nullopt});
  EXPECT_NE(first.get(), third.get());
  EXPECT_EQ(responder.cache.stats().full_encodes, 2u);
}

TEST(SnapshotCache, SectionSubsetsCacheIndependently) {
  Responder responder;
  const auto all = responder.answer({1, wire::kSectionAll, std::nullopt});
  const auto dev = responder.answer({2, wire::kSectionDevice, std::nullopt});
  EXPECT_NE(all.get(), dev.get());
  EXPECT_EQ(decode_or_die(dev).sections, wire::kSectionDevice);
  EXPECT_EQ(dev.get(),
            responder.answer({3, wire::kSectionDevice, std::nullopt}).get());
}

TEST(SnapshotCache, NotModifiedWhenBaselineCurrent) {
  Responder responder;
  responder.services = {{"echo", "", 4}};
  View view;
  view.apply(decode_or_die(
      responder.answer({1, wire::kSectionAll, std::nullopt})));

  const auto reply = responder.answer(
      {2, wire::kSectionAll, view.baseline(wire::kSectionAll)});
  const auto decoded = decode_or_die(reply);
  EXPECT_TRUE(decoded.not_modified);
  // The kNotModified frame is cached and shared too.
  EXPECT_EQ(reply.get(),
            responder
                .answer({3, wire::kSectionAll, view.baseline(wire::kSectionAll)})
                .get());
  EXPECT_EQ(responder.cache.stats().not_modified, 2u);
}

TEST(SnapshotCache, DeltaCarriesOnlyChangedSections) {
  Responder responder;
  responder.services = {{"echo", "", 4}};
  View view;
  view.apply(decode_or_die(
      responder.answer({1, wire::kSectionAll, std::nullopt})));

  responder.services.push_back({"late", "", 5});
  ++responder.services_gen;
  const auto decoded = decode_or_die(responder.answer(
      {7, wire::kSectionAll, view.baseline(wire::kSectionAll)}));
  EXPECT_EQ(decoded.sections, wire::kSectionServices);
  EXPECT_EQ(decoded.request_id, 7u);  // deltas echo the real id
  ASSERT_EQ(decoded.services.size(), 2u);

  view.apply(decoded);
  EXPECT_EQ(view.services, responder.services);
}

TEST(SnapshotCache, LoadChangeInvalidatesCachedFrames) {
  Responder responder;
  const auto first = responder.answer({1, wire::kSectionAll, std::nullopt});
  responder.load = 40;
  const auto second = responder.answer({2, wire::kSectionAll, std::nullopt});
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(decode_or_die(second).load_percent, 40);
}

TEST(SnapshotCache, EpochMismatchForcesFullResponse) {
  Responder responder;
  responder.services = {{"echo", "", 4}};
  View view;
  view.apply(decode_or_die(
      responder.answer({1, wire::kSectionAll, std::nullopt})));

  // Responder restarts: generations regress, epoch changes. The stale
  // baseline must be ignored and every requested section shipped.
  responder.restart();
  responder.services = {{"reborn", "", 6}};
  const auto decoded = decode_or_die(responder.answer(
      {2, wire::kSectionAll, view.baseline(wire::kSectionAll)}));
  EXPECT_FALSE(decoded.not_modified);
  EXPECT_EQ(decoded.sections, wire::kSectionAll);
  view.apply(decoded);
  EXPECT_EQ(view.services, responder.services);
  EXPECT_EQ(view.epoch, responder.epoch);
}

TEST(SnapshotCache, GenerationWraparoundIsAChange) {
  Responder responder;
  // Equality-only comparison makes wraparound safe: 0xffffffff -> 0 is just
  // "different", never "older".
  responder.services_gen = 0xffffffffu;
  View view;
  view.apply(decode_or_die(
      responder.answer({1, wire::kSectionAll, std::nullopt})));
  EXPECT_EQ(view.gens.services, 0xffffffffu);

  responder.services = {{"wrapped", "", 2}};
  ++responder.services_gen;  // wraps to 0
  EXPECT_EQ(responder.services_gen, 0u);
  const auto decoded = decode_or_die(responder.answer(
      {2, wire::kSectionAll, view.baseline(wire::kSectionAll)}));
  EXPECT_EQ(decoded.sections, wire::kSectionServices);
  view.apply(decoded);
  EXPECT_EQ(view.services, responder.services);

  // And the new value is a stable baseline again.
  const auto again = decode_or_die(responder.answer(
      {3, wire::kSectionAll, view.baseline(wire::kSectionAll)}));
  EXPECT_TRUE(again.not_modified);
}

TEST(SnapshotCache, CachingDisabledStillAnswersCorrectly) {
  Responder responder;
  responder.cache.set_caching(false);
  responder.services = {{"echo", "", 4}};
  const auto first = responder.answer({1, wire::kSectionAll, std::nullopt});
  const auto second = responder.answer({2, wire::kSectionAll, std::nullopt});
  EXPECT_NE(first.get(), second.get());  // fresh encode per request

  View view;
  view.apply(decode_or_die(first));
  const auto decoded = decode_or_die(responder.answer(
      {3, wire::kSectionAll, view.baseline(wire::kSectionAll)}));
  EXPECT_TRUE(decoded.not_modified);
}

TEST(SnapshotDelta, TruncatedFramesRejected) {
  Responder responder;
  responder.services = {{"echo", "attr", 4}};
  ASSERT_TRUE(responder.storage.upsert(record_for(5, 0, 200)));
  View view;
  view.apply(decode_or_die(
      responder.answer({1, wire::kSectionAll, std::nullopt})));
  responder.services.push_back({"late", "", 5});
  ++responder.services_gen;

  const auto full = responder.answer({2, wire::kSectionAll, std::nullopt});
  const auto delta = responder.answer(
      {3, wire::kSectionAll, view.baseline(wire::kSectionAll)});
  const auto not_modified = responder.answer(
      {4, wire::kSectionAll,
       wire::FetchBaseline{responder.epoch, responder.source().gens}});
  for (const auto& frame : {full, delta, not_modified}) {
    for (std::size_t cut = 1; cut < frame->size(); ++cut) {
      Bytes truncated{frame->begin(),
                      frame->begin() + static_cast<long>(cut)};
      EXPECT_FALSE(wire::decode_fetch_response(truncated).has_value())
          << "prefix of length " << cut << " must be rejected";
    }
    EXPECT_TRUE(wire::decode_fetch_response(*frame).has_value());
  }

  // Conditional requests reject truncation too.
  wire::FetchRequest request{9, wire::kSectionAll,
                             view.baseline(wire::kSectionAll)};
  const Bytes encoded = wire::encode(request);
  for (std::size_t cut = 1; cut < encoded.size(); ++cut) {
    Bytes truncated{encoded.begin(), encoded.begin() + static_cast<long>(cut)};
    EXPECT_FALSE(wire::decode_fetch_request(truncated).has_value());
  }

  // Unknown section bits and unknown request flags are rejected.
  Bytes bad_sections = *full;
  bad_sections[5] = 0xff;
  EXPECT_FALSE(wire::decode_fetch_response(bad_sections).has_value());
  Bytes bad_flags = encoded;
  bad_flags[6] = 0x7e;
  EXPECT_FALSE(wire::decode_fetch_request(bad_flags).has_value());
}

// The randomized parity oracle: >=10k mixed mutate/fetch operations; after
// every conditional fetch the delta-assembled view must equal a full fetch.
TEST(SnapshotDelta, RandomizedDeltaVsFullParity) {
  Rng rng{20260729};
  Responder responder;
  responder.services_gen = 0xfffffff0u;  // wraps mid-run
  View view;

  int fetches = 0;
  for (int op = 0; op < 12000; ++op) {
    switch (rng.uniform_int(0, 9)) {
      case 0:
      case 1: {  // neighbour upsert (insert / refresh / better route)
        const auto index = static_cast<std::uint64_t>(rng.uniform_int(3, 40));
        responder.storage.upsert(record_for(
            index, static_cast<int>(rng.uniform_int(0, 3)),
            static_cast<int>(rng.uniform_int(100, 255))));
        break;
      }
      case 2: {  // neighbour removal
        responder.storage.remove(MacAddress::from_index(
            static_cast<std::uint64_t>(rng.uniform_int(3, 40))));
        break;
      }
      case 3: {  // service churn
        if (!responder.services.empty() && rng.bernoulli(0.5)) {
          responder.services.pop_back();
        } else {
          responder.services.push_back(
              {"svc-" + std::to_string(op), "", static_cast<std::uint16_t>(op)});
        }
        ++responder.services_gen;
        break;
      }
      case 4: {  // load drift
        responder.load = static_cast<std::uint8_t>(rng.uniform_int(0, 100));
        break;
      }
      case 5: {  // responder restart (rare-ish): epoch change + regression
        if (rng.bernoulli(0.05)) responder.restart();
        break;
      }
      default: {  // conditional fetch, then verify against a full fetch
        ++fetches;
        const std::uint8_t sections = wire::kSectionAll;
        const auto request_id = static_cast<std::uint32_t>(op + 1);
        const auto conditional = wire::decode_fetch_response(*responder.answer(
            {request_id, sections, view.baseline(sections)}));
        ASSERT_TRUE(conditional.has_value());
        view.apply(*conditional);

        const auto full = wire::decode_fetch_response(
            *responder.answer({request_id, sections, std::nullopt}));
        ASSERT_TRUE(full.has_value());
        ASSERT_EQ(view.device, full->device) << "op " << op;
        ASSERT_EQ(view.prototypes, full->prototypes) << "op " << op;
        ASSERT_EQ(view.services, full->services) << "op " << op;
        ASSERT_EQ(view.neighbours, full->neighbours) << "op " << op;
        break;
      }
    }
  }
  EXPECT_GT(fetches, 3000);
  const auto& stats = responder.cache.stats();
  // The run must actually exercise every answer path.
  EXPECT_GT(stats.not_modified, 0u);
  EXPECT_GT(stats.deltas, 0u);
  EXPECT_GT(stats.full_hits, 0u);
  EXPECT_GT(stats.full_encodes, 0u);
}

}  // namespace
}  // namespace peerhood
