#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace peerhood::sim {
namespace {

SimTime at(double s) { return SimTime{} + seconds(s); }

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(3.0), [&] { order.push_back(3); });
  q.schedule(at(1.0), [&] { order.push_back(1); });
  q.schedule(at(2.0), [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableForEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at(1.0), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(at(1.0), [&] { ran = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelOneOfMany) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(1.0), [&] { order.push_back(1); });
  const EventId id = q.schedule(at(2.0), [&] { order.push_back(2); });
  q.schedule(at(3.0), [&] { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelFiredIdIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(at(1.0), [] {});
  q.run_next();
  q.cancel(id);  // must not crash or underflow the live count
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelInvalidIdIsNoop) {
  EventQueue q;
  q.cancel(9999);
  q.cancel(kInvalidEvent);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(at(1.0), [] {});
  q.schedule(at(5.0), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), at(5.0));
}

TEST(EventQueue, RunNextReturnsScheduledTime) {
  EventQueue q;
  q.schedule(at(2.5), [] {});
  EXPECT_EQ(q.run_next(), at(2.5));
}

TEST(EventQueue, EventMaySchedule) {
  EventQueue q;
  int fired = 0;
  q.schedule(at(1.0), [&] {
    ++fired;
    q.schedule(at(2.0), [&] { ++fired; });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(at(1.0), [] {});
  q.schedule(at(2.0), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.run_next();
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace peerhood::sim
