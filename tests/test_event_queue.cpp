#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/reference_event_queue.hpp"

namespace peerhood::sim {
namespace {

SimTime at(double s) { return SimTime{} + seconds(s); }

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(3.0), [&] { order.push_back(3); });
  q.schedule(at(1.0), [&] { order.push_back(1); });
  q.schedule(at(2.0), [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableForEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at(1.0), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(at(1.0), [&] { ran = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelOneOfMany) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(1.0), [&] { order.push_back(1); });
  const EventId id = q.schedule(at(2.0), [&] { order.push_back(2); });
  q.schedule(at(3.0), [&] { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelFiredIdIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(at(1.0), [] {});
  q.run_next();
  q.cancel(id);  // must not crash or underflow the live count
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelInvalidIdIsNoop) {
  EventQueue q;
  q.cancel(9999);
  q.cancel(kInvalidEvent);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(at(1.0), [] {});
  q.schedule(at(5.0), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), at(5.0));
}

TEST(EventQueue, RunNextReturnsScheduledTime) {
  EventQueue q;
  q.schedule(at(2.5), [] {});
  EXPECT_EQ(q.run_next(), at(2.5));
}

TEST(EventQueue, EventMaySchedule) {
  EventQueue q;
  int fired = 0;
  q.schedule(at(1.0), [&] {
    ++fired;
    q.schedule(at(2.0), [&] { ++fired; });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(at(1.0), [] {});
  q.schedule(at(2.0), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.run_next();
  EXPECT_EQ(q.size(), 0u);
}

// A stale id must never touch the newer event occupying its recycled slot:
// the generation half of the id disambiguates.
TEST(EventQueue, StaleIdCannotCancelRecycledSlot) {
  EventQueue q;
  bool first = false;
  bool second = false;
  const EventId a = q.schedule(at(1.0), [&] { first = true; });
  q.cancel(a);  // releases a's slot
  const EventId b = q.schedule(at(2.0), [&] { second = true; });
  // The pool is LIFO, so b reuses a's slot — same slot index, new generation.
  EXPECT_EQ(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b));
  EXPECT_NE(a, b);
  q.cancel(a);  // stale: must be a no-op
  q.cancel(a);
  while (!q.empty()) q.run_next();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST(EventQueue, StaleIdAfterFireCannotCancelRecycledSlot) {
  EventQueue q;
  const EventId a = q.schedule(at(1.0), [] {});
  (void)q.run_next();  // fires a, releasing its slot
  bool second = false;
  const EventId b = q.schedule(at(2.0), [&] { second = true; });
  EXPECT_EQ(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b));
  q.cancel(a);  // refers to the fired event, not the new occupant
  EXPECT_EQ(q.size(), 1u);
  (void)q.run_next();
  EXPECT_TRUE(second);
}

// Heavy recycling: slots are scheduled, fired or cancelled and re-scheduled
// many times. Cancelling an id whose event already fired (its slot possibly
// recycled) must be a strict no-op, so every scheduled event is accounted
// for exactly once: fired or observably cancelled.
TEST(EventQueue, SlotRecyclingKeepsIdsFresh) {
  EventQueue q;
  Rng rng{99};
  std::vector<EventId> issued;  // every id ever returned, fired or not
  int scheduled = 0;
  int fired = 0;
  int cancelled = 0;
  for (int round = 0; round < 3000; ++round) {
    const int action = static_cast<int>(rng.uniform_int(0, 2));
    if (action == 0 || q.empty()) {
      issued.push_back(q.schedule(at(rng.uniform(0.0, 10.0)), [&] { ++fired; }));
      ++scheduled;
    } else if (action == 1) {
      // Cancel a random id from the full history — most are stale.
      const auto index = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(issued.size()) - 1));
      const std::size_t size_before = q.size();
      q.cancel(issued[index]);
      if (q.size() != size_before) ++cancelled;
    } else {
      (void)q.run_next();
    }
  }
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired + cancelled, scheduled);
  EXPECT_GT(fired, 0);
  EXPECT_GT(cancelled, 0);
}

// The acceptance-criteria parity test: >= 10k mixed schedule/cancel/fire
// operations driven identically through the pooled queue and the retained
// pre-arena reference implementation must produce identical
// (time, insertion-order) fire sequences.
TEST(EventQueue, RandomizedParityWithReferenceQueue) {
  EventQueue pooled;
  ReferenceEventQueue reference;
  // (tag, fire-time) logs, one per implementation.
  std::vector<std::pair<int, SimTime>> pooled_log;
  std::vector<std::pair<int, SimTime>> reference_log;
  // Live events tracked as (pooled id, reference id) pairs so a random
  // cancel hits the *same* logical event in both queues.
  std::vector<std::pair<EventId, ReferenceEventQueue::EventId>> live;

  Rng rng{2024};
  SimTime now{};
  int next_tag = 0;
  constexpr int kOps = 12'000;
  // Delay mix stressing every tier of the pooled queue: zero-delay bursts
  // and small near-horizon delays (first wheel), delays straddling the
  // ~33 ms frame boundary (second wheel, incl. keepalive/inquiry-scale
  // timers), delays beyond the ~33.6 s second-wheel horizon (far heap), and
  // occasional *past* deadlines, which force the wheel-to-heap flush path.
  const auto random_when = [&rng, &now] {
    const double roll = rng.next_double();
    if (roll < 0.25) return now;
    if (roll < 0.55) return now + microseconds(rng.uniform_int(0, 50));
    if (roll < 0.70) return now + microseconds(rng.uniform_int(20'000, 60'000));
    if (roll < 0.85) {
      return now + microseconds(rng.uniform_int(60'000, 30'000'000));
    }
    if (roll < 0.92) {
      return now + microseconds(rng.uniform_int(30'000'000, 80'000'000));
    }
    return SimTime{} + microseconds(rng.uniform_int(
                           0, now.since_epoch.count() + 1));  // past or near 0
  };
  for (int op = 0; op < kOps; ++op) {
    const int choice = static_cast<int>(rng.uniform_int(0, 9));
    if (choice < 6) {  // schedule (60%), duplicate times are common
      const SimTime when = random_when();
      const int tag = next_tag++;
      const EventId pid = pooled.schedule(
          when, [tag, &pooled_log] { pooled_log.emplace_back(tag, SimTime{}); });
      const auto rid = reference.schedule(
          when, [tag, &reference_log] {
            reference_log.emplace_back(tag, SimTime{});
          });
      live.emplace_back(pid, rid);
    } else if (choice < 8) {  // cancel (20%)
      if (live.empty()) continue;
      const auto index = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      pooled.cancel(live[index].first);
      reference.cancel(live[index].second);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
    } else {  // fire (20%)
      if (pooled.empty()) continue;
      ASSERT_FALSE(reference.empty());
      ASSERT_EQ(pooled.next_time(), reference.next_time());
      const SimTime tp = pooled.run_next();
      const SimTime tr = reference.run_next();
      ASSERT_EQ(tp, tr);
      ASSERT_FALSE(pooled_log.empty());
      pooled_log.back().second = tp;
      reference_log.back().second = tr;
      now = tp;
    }
  }
  while (!pooled.empty()) {
    ASSERT_FALSE(reference.empty());
    const SimTime tp = pooled.run_next();
    const SimTime tr = reference.run_next();
    ASSERT_EQ(tp, tr);
    pooled_log.back().second = tp;
    reference_log.back().second = tr;
  }
  EXPECT_TRUE(reference.empty());
  ASSERT_EQ(pooled.size(), 0u);
  EXPECT_EQ(pooled_log, reference_log);
  EXPECT_GE(pooled_log.size(), 5'000u);
}

// Scheduling behind the queue's clock (below the last fired time) must
// still fire in global (time, insertion-order) order — this exercises the
// wheel-to-heap flush that keeps the near-horizon window consistent.
TEST(EventQueue, PastTimeScheduleFiresInGlobalOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(5.0), [&] { order.push_back(5); });
  EXPECT_EQ(q.run_next(), at(5.0));  // clock now at 5s
  q.schedule(at(5.0), [&] { order.push_back(50); });   // same instant
  q.schedule(at(1.0), [&] { order.push_back(1); });    // in the past
  q.schedule(at(5.0), [&] { order.push_back(51); });   // same instant again
  q.schedule(at(7.0), [&] { order.push_back(7); });
  EXPECT_EQ(q.next_time(), at(1.0));
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{5, 1, 50, 51, 7}));
}

// A cancel storm that empties the queue must not strand cancelled events'
// storage: the arena is reclaimed and fully reused by later schedules.
TEST(EventQueue, CancelStormReleasesAndReusesSlots) {
  EventQueue q;
  std::vector<EventId> first;
  for (int i = 0; i < 100; ++i) {
    first.push_back(q.schedule(at(1.0 + i), [] {}));
  }
  for (const EventId id : first) q.cancel(id);
  EXPECT_TRUE(q.empty());
  // The next wave must recycle the same 100 slots (same indices, new gens).
  std::vector<EventId> second;
  for (int i = 0; i < 100; ++i) {
    second.push_back(q.schedule(at(2.0 + i), [] {}));
  }
  std::vector<std::uint32_t> first_slots;
  std::vector<std::uint32_t> second_slots;
  for (const EventId id : first) {
    first_slots.push_back(static_cast<std::uint32_t>(id));
  }
  for (const EventId id : second) {
    second_slots.push_back(static_cast<std::uint32_t>(id));
  }
  std::sort(first_slots.begin(), first_slots.end());
  std::sort(second_slots.begin(), second_slots.end());
  EXPECT_EQ(first_slots, second_slots);
  int fired = 0;
  while (!q.empty()) {
    q.run_next();
    ++fired;
  }
  EXPECT_EQ(fired, 100);
}

// Events on both sides of the wheel window (~33 ms) interleave correctly.
TEST(EventQueue, NearAndFarEventsInterleave) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime{} + milliseconds(100), [&] { order.push_back(100); });
  q.schedule(SimTime{} + milliseconds(1), [&] { order.push_back(1); });
  q.schedule(SimTime{} + milliseconds(50), [&] { order.push_back(50); });
  q.schedule(SimTime{} + milliseconds(2), [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 50, 100}));
}

// Timers across all three tiers — first wheel (< 33 ms), second wheel
// (keepalive/inquiry scale, < 33.6 s) and the far heap beyond it — fire in
// exact time order, including entries that cascade through both wheels.
TEST(EventQueue, SecondWheelTimersFireInOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime{} + seconds(60.0), [&] { order.push_back(7); });  // heap
  q.schedule(SimTime{} + seconds(10.0), [&] { order.push_back(5); });
  q.schedule(SimTime{} + milliseconds(500), [&] { order.push_back(3); });
  q.schedule(SimTime{} + milliseconds(1), [&] { order.push_back(1); });
  q.schedule(SimTime{} + milliseconds(40), [&] { order.push_back(2); });
  q.schedule(SimTime{} + seconds(30.0), [&] { order.push_back(6); });
  q.schedule(SimTime{} + milliseconds(900), [&] { order.push_back(4); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6, 7}));
}

// A far-scheduled timer and a near-scheduled event sharing the exact same
// timestamp must fire in insertion order: the cascade path inserts by
// sequence rather than appending.
TEST(EventQueue, CascadedTimerKeepsInsertionOrderOnTimestampTie) {
  EventQueue q;
  std::vector<int> order;
  const SimTime tie = SimTime{} + seconds(5.0);
  q.schedule(tie, [&] { order.push_back(1); });  // second wheel (far)
  q.schedule(SimTime{} + seconds(4.999), [&, tie] {
    // Scheduled near-horizon, directly into the first wheel, after the far
    // timer has already been pending for ~5 s.
    q.schedule(tie, [&] { order.push_back(2); });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// Cancelling second-wheel timers defers slot reclamation to the frame
// cascade (or queue reset); every event must still be accounted for exactly
// once across heavy mixed-horizon churn.
TEST(EventQueue, SecondWheelCancelAndRecycle) {
  EventQueue q;
  Rng rng{7};
  int fired = 0;
  std::vector<EventId> ids;
  for (int round = 0; round < 2000; ++round) {
    ids.push_back(q.schedule(
        SimTime{} + microseconds(rng.uniform_int(0, 30'000'000)),
        [&] { ++fired; }));
    if (round % 3 == 0) {
      q.cancel(ids[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(ids.size()) - 1))]);
    }
  }
  const auto pending = static_cast<int>(q.size());
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, pending);
  // The arena must be fully reclaimed: a fresh wave reuses recycled slots.
  const EventId again = q.schedule(SimTime{} + seconds(1.0), [] {});
  EXPECT_NE(again, kInvalidEvent);
  q.cancel(again);
}

// Events scheduled from inside a firing callback keep FIFO order among
// equal times, matching the reference contract.
TEST(EventQueue, ReschedulingCallbackKeepsInsertionOrder) {
  EventQueue q;
  std::vector<std::string> order;
  q.schedule(at(1.0), [&] {
    order.push_back("a");
    q.schedule(at(2.0), [&] { order.push_back("a2"); });
  });
  q.schedule(at(2.0), [&] { order.push_back("b"); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "a2"}));
}

}  // namespace
}  // namespace peerhood::sim
