// Interconnection system tests (Ch. 4): PH_BRIDGE chains, even/odd relay
// pairing, acknowledgement propagation, capacity limits and retries.
#include <gtest/gtest.h>

#include "scenario_util.hpp"

namespace peerhood {
namespace {

using node::Testbed;
using testing::fast_node;
using testing::reliable_bluetooth;

// Line a(0) - b(8) - c(16): a and c are not in mutual coverage; b relays.
class BridgeTest : public ::testing::Test {
 protected:
  void build(std::uint64_t seed, int extra_hops = 0) {
    testbed_ = std::make_unique<Testbed>(seed);
    testbed_->medium().configure(reliable_bluetooth());
    a_ = &testbed_->add_node("a", {0.0, 0.0},
                             fast_node(MobilityClass::kDynamic));
    b_ = &testbed_->add_node("b", {8.0, 0.0},
                             fast_node(MobilityClass::kStatic));
    double x = 16.0;
    node::Node* last = &testbed_->add_node(
        "c", {x, 0.0}, fast_node(MobilityClass::kStatic));
    for (int i = 0; i < extra_hops; ++i) {
      x += 8.0;
      last = &testbed_->add_node("h" + std::to_string(i), {x, 0.0},
                                 fast_node(MobilityClass::kStatic));
    }
    end_ = last;
    (void)end_->library().register_service(
        ServiceInfo{"echo", "", 0},
        [this](ChannelPtr channel, const wire::ConnectRequest&) {
          server_channel_ = channel;
          // Ownership stays in the fixture; a handler owning its own channel
          // would be an unbreakable cycle (see common/handler_slot.hpp).
          channel->set_data_handler([raw = channel.get()](const Bytes& frame) {
            (void)raw->write(frame);
          });
        });
    testbed_->run_discovery_rounds(4 + extra_hops * 2);
  }

  std::unique_ptr<Testbed> testbed_;
  node::Node* a_{nullptr};
  node::Node* b_{nullptr};
  node::Node* end_{nullptr};
  ChannelPtr server_channel_;
};

TEST_F(BridgeTest, TwoHopConnectAndRelay) {
  build(1);
  ASSERT_FALSE(testbed_->medium().in_range(a_->mac(), end_->mac(),
                                           Technology::kBluetooth));
  auto result = a_->connect_blocking(end_->mac(), "echo");
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const ChannelPtr channel = result.value();

  Bytes reply;
  channel->set_data_handler([&](const Bytes& frame) { reply = frame; });
  ASSERT_TRUE(channel->write(Bytes{0xAA, 0xBB}).ok());
  testbed_->run_for(5.0);
  EXPECT_EQ(reply, (Bytes{0xAA, 0xBB}));

  const auto& stats = b_->bridge_service().stats();
  EXPECT_EQ(stats.established, 1u);
  EXPECT_GE(stats.relayed_frames, 2u) << "request and echo both cross b";
  EXPECT_EQ(b_->bridge_service().active_pairs(), 1);
}

TEST_F(BridgeTest, ServerSeesRealClientViaParams) {
  build(2);
  Library::ConnectOptions options;
  options.include_client_params = true;
  options.reconnect_service = "client.cb";
  auto result = a_->connect_blocking(end_->mac(), "echo", options);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(server_channel_, nullptr);
  // Transport-wise the server talks to the bridge; application-wise to a.
  EXPECT_EQ(server_channel_->peer(), a_->mac());
  EXPECT_EQ(server_channel_->connection()->remote_address().mac, b_->mac());
}

TEST_F(BridgeTest, PaperMessageLoop) {
  // §4.3 figure 4.5 style workload: 20 messages at 1 s intervals.
  build(3);
  auto result = a_->connect_blocking(end_->mac(), "echo");
  ASSERT_TRUE(result.ok());
  const ChannelPtr channel = result.value();
  int echoes = 0;
  channel->set_data_handler([&](const Bytes&) { ++echoes; });
  for (int i = 0; i < 20; ++i) {
    testbed_->sim().schedule_after(seconds(static_cast<double>(i)),
                                   [channel] {
                                     (void)channel->write(Bytes{0x55});
                                   });
  }
  testbed_->run_for(25.0);
  EXPECT_EQ(echoes, 20);
}

TEST_F(BridgeTest, ThreeHopChain) {
  build(4, /*extra_hops=*/1);  // a - b - c - h0
  auto result = a_->connect_blocking(end_->mac(), "echo", {}, 300.0);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  Bytes reply;
  result.value()->set_data_handler([&](const Bytes& f) { reply = f; });
  ASSERT_TRUE(result.value()->write(Bytes{7}).ok());
  testbed_->run_for(5.0);
  EXPECT_EQ(reply, (Bytes{7}));
  // Both intermediate bridges carried the pair.
  EXPECT_EQ(b_->bridge_service().stats().established, 1u);
  EXPECT_EQ(testbed_->node("c").bridge_service().stats().established, 1u);
}

TEST_F(BridgeTest, CloseTearsDownWholeChain) {
  build(5);
  auto result = a_->connect_blocking(end_->mac(), "echo");
  ASSERT_TRUE(result.ok());
  ASSERT_NE(server_channel_, nullptr);
  bool server_closed = false;
  server_channel_->set_close_handler([&] { server_closed = true; });
  result.value()->close();
  testbed_->run_for(5.0);
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(b_->bridge_service().active_pairs(), 0);
  EXPECT_EQ(b_->bridge_service().stats().closed_pairs, 1u);
}

TEST_F(BridgeTest, ServerCloseAlsoTearsDown) {
  build(6);
  auto result = a_->connect_blocking(end_->mac(), "echo");
  ASSERT_TRUE(result.ok());
  bool client_closed = false;
  result.value()->set_close_handler([&] { client_closed = true; });
  server_channel_->close();
  testbed_->run_for(5.0);
  EXPECT_TRUE(client_closed);
  EXPECT_EQ(b_->bridge_service().active_pairs(), 0);
}

TEST_F(BridgeTest, CapacityLimitRejects) {
  build(7);
  // Shrink b's capacity to zero and try to connect through it.
  b_->bridge_service().stop();
  bridge::BridgeConfig tiny;
  tiny.max_connections = 0;
  auto* constrained =
      new bridge::BridgeService(b_->daemon(), b_->library(), tiny);
  constrained->start();
  auto result = a_->connect_blocking(end_->mac(), "echo");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kCapacityExceeded);
  delete constrained;
}

TEST_F(BridgeTest, FailurePropagatesWhenDestinationGone) {
  build(8);
  // The far node's engine stops listening; the chain must report failure.
  end_->daemon().engine().stop();
  auto result = a_->connect_blocking(end_->mac(), "echo");
  ASSERT_FALSE(result.ok());
}

TEST_F(BridgeTest, RetryRecoversFromTransientFault) {
  build(9);
  // Re-enable stochastic faults with retry enabled: over many attempts the
  // bridge's retry must lift the end-to-end success rate above the
  // no-retry baseline. Determinism comes from the fixed seed.
  sim::TechnologyParams bt = reliable_bluetooth();
  bt.connect_failure_prob = 0.4;
  testbed_->medium().configure(bt);
  int ok = 0;
  for (int i = 0; i < 12; ++i) {
    auto result = a_->connect_blocking(end_->mac(), "echo", {}, 240.0);
    if (result.ok()) {
      ++ok;
      result.value()->close();
      testbed_->run_for(3.0);
    }
  }
  EXPECT_GT(b_->bridge_service().stats().retries, 0u);
  // Per-attempt success ≈ 0.6 (client hop, no retry) x 0.84 (bridge hop
  // with one retry) ≈ 0.5 — expect roughly half of 12 to succeed.
  EXPECT_GE(ok, 4);
}

TEST_F(BridgeTest, LoadFractionTracksPairs) {
  build(10);
  EXPECT_DOUBLE_EQ(b_->daemon().load_fraction(), 0.0);
  auto result = a_->connect_blocking(end_->mac(), "echo");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(b_->daemon().load_fraction(), 0.0);
  result.value()->close();
  testbed_->run_for(3.0);
  EXPECT_DOUBLE_EQ(b_->daemon().load_fraction(), 0.0);
}

TEST_F(BridgeTest, BridgeDoesNotInterpretTraffic) {
  build(11);
  auto result = a_->connect_blocking(end_->mac(), "echo");
  ASSERT_TRUE(result.ok());
  // Send bytes that look like protocol commands; the bridge must relay
  // them opaquely rather than parse them.
  Bytes tricky = wire::encode_fail(ErrorCode::kNoRoute, "fake");
  Bytes reply;
  result.value()->set_data_handler([&](const Bytes& f) { reply = f; });
  ASSERT_TRUE(result.value()->write(tricky).ok());
  testbed_->run_for(5.0);
  EXPECT_EQ(reply, tricky);
  EXPECT_TRUE(result.value()->open());
}

}  // namespace
}  // namespace peerhood
