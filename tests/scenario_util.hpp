// Shared scenario helpers for integration tests and benches.
#pragma once

#include "node/testbed.hpp"

namespace peerhood::testing {

// Bluetooth parameters with the stochastic failure modes disabled and fast
// establishment — for tests whose subject is protocol logic, not the §4.3
// fault statistics.
inline sim::TechnologyParams reliable_bluetooth() {
  sim::TechnologyParams bt = sim::bluetooth_params();
  bt.connect_failure_prob = 0.0;
  bt.connect_delay_min_s = 0.5;
  bt.connect_delay_max_s = 1.0;
  bt.fetch_failure_prob = 0.0;
  return bt;
}

// Node options with per-loop full refresh so tests converge quickly.
inline node::NodeOptions fast_node(MobilityClass mobility) {
  node::NodeOptions options;
  options.mobility = mobility;
  options.daemon.service_check_interval = seconds(5.0);
  return options;
}

// Drives `testbed` until `predicate()` holds or `deadline_s` sim-seconds
// elapse; returns whether the predicate held.
template <typename Predicate>
bool run_until(node::Testbed& testbed, Predicate predicate,
               double deadline_s) {
  const SimTime deadline = testbed.sim().now() + seconds(deadline_s);
  while (!predicate() && testbed.sim().now() < deadline) {
    if (!testbed.sim().step()) {
      // Idle queue: advance in small hops so periodic tasks rearm.
      testbed.sim().run_until(
          std::min(deadline, testbed.sim().now() + seconds(0.1)));
    }
  }
  return predicate();
}

}  // namespace peerhood::testing
