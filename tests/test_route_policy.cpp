// Route-preference policy tests, including the paper's worked examples:
// Fig. 3.8 (pick the route with the larger quality sum) and Fig. 3.9 (equal
// sums — reject the route whose individual link is below the 230 threshold).
#include "discovery/route_policy.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "discovery/device_storage.hpp"

namespace peerhood {
namespace {

DeviceRecord route(int jump, int mobility, int quality_sum, int min_quality) {
  DeviceRecord record;
  record.device.mac = MacAddress::from_index(1);
  record.jump = jump;
  record.route_mobility = mobility;
  record.quality_sum = quality_sum;
  record.min_link_quality = min_quality;
  return record;
}

TEST(RoutePolicy, FewerJumpsWin) {
  const RoutePolicy policy;
  EXPECT_TRUE(policy.prefer(route(1, 3, 200, 100), route(2, 0, 999, 250)));
  EXPECT_FALSE(policy.prefer(route(2, 0, 999, 250), route(1, 3, 200, 100)));
}

TEST(RoutePolicy, LowerMobilityBreaksJumpTie) {
  const RoutePolicy policy;
  // §3.4.3: prefer static bridges — traffic concentrates on the backbone.
  EXPECT_TRUE(policy.prefer(route(1, 0, 100, 100), route(1, 3, 150, 120)));
  EXPECT_FALSE(policy.prefer(route(1, 3, 150, 120), route(1, 0, 100, 100)));
}

TEST(RoutePolicy, QualitySumBreaksRemainingTie) {
  const RoutePolicy policy;
  EXPECT_TRUE(policy.prefer(route(1, 1, 460, 100), route(1, 1, 440, 120)));
  EXPECT_FALSE(policy.prefer(route(1, 1, 440, 120), route(1, 1, 460, 100)));
}

TEST(RoutePolicy, EqualRoutesNotPreferred) {
  const RoutePolicy policy;
  EXPECT_FALSE(policy.prefer(route(1, 1, 400, 240), route(1, 1, 400, 240)));
}

TEST(RoutePolicy, Figure38QualityAddition) {
  // Fig. 3.8: two 1-jump routes A-B-D vs A-C-D; pick the larger AB+BD sum.
  const RoutePolicy policy;
  const DeviceRecord via_b = route(1, 0, 250 + 245, 245);
  const DeviceRecord via_c = route(1, 0, 240 + 235, 235);
  EXPECT_TRUE(policy.prefer(via_b, via_c));
}

TEST(RoutePolicy, Figure39ThresholdEquity) {
  // Fig. 3.9: both routes sum to 460, but A-C = 210 < 230 — "the route
  // A-C-D won't be accepted due to A-C being lower than the minimum
  // threshold 230".
  const RoutePolicy policy;
  const DeviceRecord via_b = route(1, 0, 230 + 230, 230);
  const DeviceRecord via_c = route(1, 0, 210 + 250, 210);
  EXPECT_TRUE(policy.admissible(via_b));
  EXPECT_FALSE(policy.admissible(via_c));
  EXPECT_TRUE(policy.prefer(via_b, via_c));
  EXPECT_FALSE(policy.prefer(via_c, via_b));
}

TEST(RoutePolicy, JumpsDominateAdmissibility) {
  // The Fig. 3.9 threshold is a tie-breaker *within* a jump class: a short
  // weak route still beats a longer admissible one — in particular a direct
  // observation can never be displaced by a multi-hop detour.
  const RoutePolicy policy;
  const DeviceRecord long_good = route(2, 0, 700, 235);
  const DeviceRecord short_weak = route(1, 0, 400, 180);
  EXPECT_FALSE(policy.prefer(long_good, short_weak));
  EXPECT_TRUE(policy.prefer(short_weak, long_good));
}

TEST(RoutePolicy, AdmissibilityBreaksSameJumpTies) {
  const RoutePolicy policy;
  const DeviceRecord weak_high_sum = route(1, 0, 520, 180);
  const DeviceRecord good_low_sum = route(1, 0, 470, 235);
  EXPECT_TRUE(policy.prefer(good_low_sum, weak_high_sum));
  EXPECT_FALSE(policy.prefer(weak_high_sum, good_low_sum));
}

TEST(RoutePolicy, ThresholdDisabledFallsBackToChain) {
  RoutePolicy policy;
  policy.enforce_threshold = false;
  const DeviceRecord weak_high_sum = route(1, 0, 520, 180);
  const DeviceRecord good_low_sum = route(1, 0, 470, 235);
  EXPECT_FALSE(policy.prefer(good_low_sum, weak_high_sum));
  EXPECT_TRUE(policy.prefer(weak_high_sum, good_low_sum));
}

// Property sweep: the preference relation must be a strict weak ordering —
// asymmetric and never both-ways — across a grid of route shapes.
class RoutePolicyProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(RoutePolicyProperty, PreferenceIsAsymmetric) {
  const auto [jump_a, mob_a, qual_a, min_a] = GetParam();
  const RoutePolicy policy;
  const DeviceRecord a = route(jump_a, mob_a, qual_a, min_a);
  for (const int jump_b : {0, 1, 3}) {
    for (const int mob_b : {0, 1, 3}) {
      for (const int qual_b : {200, 400, 700}) {
        for (const int min_b : {180, 230, 250}) {
          const DeviceRecord b = route(jump_b, mob_b, qual_b, min_b);
          EXPECT_FALSE(policy.prefer(a, b) && policy.prefer(b, a))
              << "both-ways preference for (" << jump_a << "," << mob_a << ","
              << qual_a << "," << min_a << ") vs (" << jump_b << "," << mob_b
              << "," << qual_b << "," << min_b << ")";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RoutePolicyProperty,
    ::testing::Combine(::testing::Values(0, 1, 3),        // jumps
                       ::testing::Values(0, 1, 3),        // mobility
                       ::testing::Values(200, 400, 700),  // quality sum
                       ::testing::Values(180, 230, 250)   // min link
                       ));

}  // namespace
}  // namespace peerhood
