// End-to-end dynamic device discovery (Ch. 3): coverage exclusion solved,
// jump counts correct, routes propagate one hop per searching cycle, aging
// removes departed devices, legacy mode reproduces the pre-thesis limits.
#include <gtest/gtest.h>

#include "baseline/visibility.hpp"
#include "scenario_util.hpp"

namespace peerhood {
namespace {

using node::Testbed;
using testing::fast_node;
using testing::reliable_bluetooth;

// A line of nodes 8 m apart: with 10 m Bluetooth range only adjacent nodes
// are in mutual coverage — the Fig. 3.3 coverage-exclusion setup.
void build_line(Testbed& testbed, int n,
                MobilityClass mobility = MobilityClass::kStatic) {
  for (int i = 0; i < n; ++i) {
    testbed.add_node("n" + std::to_string(i), {8.0 * i, 0.0},
                     fast_node(mobility));
  }
}

TEST(DiscoveryIntegration, DirectNeighboursFoundFirstRound) {
  Testbed testbed{1};
  testbed.medium().configure(reliable_bluetooth());
  build_line(testbed, 3);
  testbed.run_discovery_rounds(2);
  auto& mid = testbed.node("n1");
  EXPECT_GE(mid.daemon().storage().direct_neighbours().size(), 2u);
}

TEST(DiscoveryIntegration, TotalEnvironmentAwarenessOnLine) {
  Testbed testbed{2};
  testbed.medium().configure(reliable_bluetooth());
  constexpr int kNodes = 5;
  build_line(testbed, kNodes);
  testbed.run_discovery_rounds(kNodes + 3);
  for (node::Node* node : testbed.nodes()) {
    EXPECT_EQ(node->daemon().storage().size(),
              static_cast<std::size_t>(kNodes - 1))
        << node->name() << " must know every other device";
  }
}

TEST(DiscoveryIntegration, JumpCountsMatchTopology) {
  Testbed testbed{3};
  testbed.medium().configure(reliable_bluetooth());
  build_line(testbed, 5);
  testbed.run_discovery_rounds(8);
  auto& a = testbed.node("n0");
  const auto expect_jump = [&](const std::string& name, int jump) {
    const auto record =
        a.daemon().storage().find(testbed.node(name).mac());
    ASSERT_TRUE(record.has_value()) << name;
    EXPECT_EQ(record->jump, jump) << name;
  };
  expect_jump("n1", 0);
  expect_jump("n2", 1);
  expect_jump("n3", 2);
  expect_jump("n4", 3);
}

TEST(DiscoveryIntegration, BridgeFieldsPointAlongTheLine) {
  Testbed testbed{4};
  testbed.medium().configure(reliable_bluetooth());
  build_line(testbed, 4);
  testbed.run_discovery_rounds(7);
  auto& a = testbed.node("n0");
  const auto far = a.daemon().storage().find(testbed.node("n3").mac());
  ASSERT_TRUE(far.has_value());
  EXPECT_EQ(far->bridge, testbed.node("n1").mac())
      << "first hop towards n3 is always n1";
  EXPECT_FALSE(far->is_direct());
}

TEST(DiscoveryIntegration, LegacyModeSuffersCoverageExclusion) {
  Testbed testbed{5};
  testbed.medium().configure(reliable_bluetooth());
  for (int i = 0; i < 5; ++i) {
    node::NodeOptions options = fast_node(MobilityClass::kStatic);
    options.daemon.propagate_routes = false;  // pre-thesis PeerHood [2]
    testbed.add_node("n" + std::to_string(i), {8.0 * i, 0.0}, options);
  }
  testbed.run_discovery_rounds(8);
  auto& a = testbed.node("n0");
  // Routable: only the direct neighbour.
  EXPECT_EQ(baseline::routable_device_count(a.daemon().storage()), 1u);
  // Visible (two-jump vision): direct neighbour + its neighbours = 2.
  EXPECT_EQ(baseline::visible_device_count(a.daemon().storage(), a.mac()), 2u);
}

TEST(DiscoveryIntegration, DynamicModeSeesEverything) {
  Testbed testbed{5};
  testbed.medium().configure(reliable_bluetooth());
  build_line(testbed, 5);
  testbed.run_discovery_rounds(8);
  auto& a = testbed.node("n0");
  EXPECT_EQ(baseline::routable_device_count(a.daemon().storage()), 4u);
}

TEST(DiscoveryIntegration, NonPeerHoodDevicesIgnored) {
  Testbed testbed{6};
  testbed.medium().configure(reliable_bluetooth());
  testbed.add_node("ph", {0.0, 0.0}, fast_node(MobilityClass::kStatic));
  node::NodeOptions alien = fast_node(MobilityClass::kStatic);
  alien.peerhood_capable = false;
  testbed.add_node("alien", {5.0, 0.0}, alien);
  testbed.run_discovery_rounds(3);
  EXPECT_FALSE(testbed.node("ph").daemon().storage().contains(
      testbed.node("alien").mac()));
  EXPECT_GT(testbed.node("ph")
                .daemon()
                .plugin(Technology::kBluetooth)
                ->stats()
                .non_peerhood,
            0u);
}

TEST(DiscoveryIntegration, DepartedDeviceAgedOutAndRoutesCascade) {
  Testbed testbed{7};
  testbed.medium().configure(reliable_bluetooth());
  testbed.add_node("a", {0.0, 0.0}, fast_node(MobilityClass::kStatic));
  // b walks away after 150 s, taking c (behind it) out of a's world.
  testbed.add_mobile_node(
      "b",
      std::make_shared<sim::WaypointPath>(std::vector<sim::WaypointPath::Waypoint>{
          {SimTime{} + seconds(0.0), {8.0, 0.0}},
          {SimTime{} + seconds(150.0), {8.0, 0.0}},
          {SimTime{} + seconds(180.0), {200.0, 0.0}},
      }),
      fast_node(MobilityClass::kDynamic));
  testbed.add_node("c", {16.0, 0.0}, fast_node(MobilityClass::kStatic));
  auto& a = testbed.node("a");
  const MacAddress b_mac = testbed.node("b").mac();
  const MacAddress c_mac = testbed.node("c").mac();
  ASSERT_TRUE(testing::run_until(
      testbed,
      [&] {
        return a.daemon().storage().contains(b_mac) &&
               a.daemon().storage().contains(c_mac);
      },
      140.0))
      << "a must learn both b (direct) and c (via b) before the walk";
  // After the walk plus a few aging loops both records must be gone.
  testbed.sim().run_until(SimTime{} + seconds(330.0));
  EXPECT_FALSE(a.daemon().storage().contains(b_mac));
  EXPECT_FALSE(a.daemon().storage().contains(c_mac))
      << "route via the departed bridge must cascade away";
}

TEST(DiscoveryIntegration, StaticBridgePreferredOverDynamic) {
  // Diamond: a - {s(static), d(dynamic)} - t. Both middles reach t; the
  // route chosen for t must go through the static one (§3.4.3).
  Testbed testbed{8};
  testbed.medium().configure(reliable_bluetooth());
  testbed.add_node("a", {0.0, 0.0}, fast_node(MobilityClass::kStatic));
  testbed.add_node("s", {6.0, 4.0}, fast_node(MobilityClass::kStatic));
  testbed.add_node("d", {6.0, -4.0}, fast_node(MobilityClass::kDynamic));
  testbed.add_node("t", {12.0, 0.0}, fast_node(MobilityClass::kStatic));
  testbed.run_discovery_rounds(8);
  const auto record =
      testbed.node("a").daemon().storage().find(testbed.node("t").mac());
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->jump, 1);
  EXPECT_EQ(record->bridge, testbed.node("s").mac())
      << "static bridges form the backbone of the network";
}

TEST(DiscoveryIntegration, ServicesPropagateAcrossJumps) {
  Testbed testbed{9};
  testbed.medium().configure(reliable_bluetooth());
  build_line(testbed, 4);
  (void)testbed.node("n3").daemon().register_service(
      ServiceInfo{"picture.analyse", "compute", 0});
  testbed.run_discovery_rounds(7);
  const auto record = testbed.node("n0").daemon().storage().find(
      testbed.node("n3").mac());
  ASSERT_TRUE(record.has_value());
  EXPECT_TRUE(record->provides("picture.analyse"));
  // And through the library API:
  const auto services = testbed.node("n0").library().get_service_list();
  const bool seen = std::any_of(
      services.begin(), services.end(), [](const auto& pair) {
        return pair.second.name == "picture.analyse";
      });
  EXPECT_TRUE(seen);
}

TEST(DiscoveryIntegration, HiddenServicesNotListed) {
  Testbed testbed{10};
  testbed.medium().configure(reliable_bluetooth());
  build_line(testbed, 2);
  testbed.run_discovery_rounds(3);
  const auto services = testbed.node("n0").library().get_service_list();
  for (const auto& [device, service] : services) {
    EXPECT_NE(service.attribute, kHiddenAttribute)
        << "the bridge service must stay hidden from applications";
  }
}

TEST(DiscoveryIntegration, PropagationDelayGrowsWithHops) {
  // Fig. 3.10: a change k hops away needs ~k searching cycles to surface.
  Testbed testbed{11};
  testbed.medium().configure(reliable_bluetooth());
  build_line(testbed, 5);
  testbed.run_discovery_rounds(8);
  // New node appears next to n4 (5 hops from n0's end of the line).
  testbed.add_node("fresh", {8.0 * 4, 8.0}, fast_node(MobilityClass::kStatic));
  const double appeared = testbed.sim().now().seconds();

  auto& n4 = testbed.node("n4");
  auto& n0 = testbed.node("n0");
  const MacAddress fresh = testbed.node("fresh").mac();
  ASSERT_TRUE(testing::run_until(
      testbed, [&] { return n4.daemon().storage().contains(fresh); }, 120.0));
  const double near_time = testbed.sim().now().seconds() - appeared;
  ASSERT_TRUE(testing::run_until(
      testbed, [&] { return n0.daemon().storage().contains(fresh); }, 400.0));
  const double far_time = testbed.sim().now().seconds() - appeared;
  EXPECT_GT(far_time, near_time)
      << "distant nodes must learn strictly later (delay = jumps x cycle)";
}

// --- Conditional fetch / delta plane (PR 4) ---------------------------------

// A noise-free link model: static topologies reach a fixed point, so the
// discovery plane must settle into kNotModified steady state.
sim::LinkQualityModel noise_free_quality() {
  sim::LinkQualityModel model;
  model.noise = 0.0;
  return model;
}

TEST(DiscoveryDelta, DeltaPlaneConvergesLikeFullFetch) {
  // Two identically-seeded worlds, one with the conditional-fetch plane and
  // the snapshot cache, one with the paper's always-full fetch. The
  // discovery outcome must be identical.
  constexpr int kNodes = 5;
  auto build = [&](bool delta) {
    auto testbed = std::make_unique<Testbed>(11, noise_free_quality());
    testbed->medium().configure(reliable_bluetooth());
    for (int i = 0; i < kNodes; ++i) {
      node::NodeOptions options = fast_node(MobilityClass::kStatic);
      options.daemon.conditional_fetch = delta;
      options.daemon.snapshot_cache = delta;
      testbed->add_node("n" + std::to_string(i), {8.0 * i, 0.0}, options);
    }
    testbed->run_discovery_rounds(kNodes + 4);
    return testbed;
  };
  const auto with_delta = build(true);
  const auto with_full = build(false);
  for (int i = 0; i < kNodes; ++i) {
    const std::string name = "n" + std::to_string(i);
    const auto delta_view =
        with_delta->node(name).daemon().storage().snapshot();
    const auto full_view = with_full->node(name).daemon().storage().snapshot();
    ASSERT_EQ(delta_view.size(), full_view.size()) << name;
    for (std::size_t r = 0; r < delta_view.size(); ++r) {
      EXPECT_EQ(delta_view[r].device, full_view[r].device) << name;
      EXPECT_EQ(delta_view[r].jump, full_view[r].jump) << name;
      EXPECT_EQ(delta_view[r].bridge, full_view[r].bridge) << name;
      EXPECT_EQ(delta_view[r].quality_sum, full_view[r].quality_sum) << name;
      EXPECT_EQ(delta_view[r].services, full_view[r].services) << name;
    }
  }
}

TEST(DiscoveryDelta, SteadyStateSettlesIntoNotModified) {
  Testbed testbed{12, noise_free_quality()};
  testbed.medium().configure(reliable_bluetooth());
  for (int i = 0; i < 3; ++i) {
    testbed.add_node("n" + std::to_string(i), {8.0 * i, 0.0},
                     fast_node(MobilityClass::kStatic));
  }
  testbed.run_discovery_rounds(8);

  auto& mid = testbed.node("n1");
  const std::uint32_t settled_gen = mid.daemon().storage().generation();
  const std::size_t settled_size = mid.daemon().storage().size();
  const auto before = mid.daemon().plugin(Technology::kBluetooth)->stats();

  testbed.run_discovery_rounds(4);

  const auto after = mid.daemon().plugin(Technology::kBluetooth)->stats();
  EXPECT_GT(after.not_modified, before.not_modified)
      << "an unchanged neighbourhood must be answered kNotModified";
  // The kNotModified path refreshes timestamps only — no analyzer /
  // reconcile pass, so the storage content generation must not move and
  // nothing may be aged out.
  EXPECT_EQ(mid.daemon().storage().generation(), settled_gen);
  EXPECT_EQ(mid.daemon().storage().size(), settled_size);
  // And the responder side serves those rounds from the shared cache.
  const auto& cache_stats = testbed.node("n0").daemon().snapshot_cache().stats();
  EXPECT_GT(cache_stats.not_modified, 0u);
}

TEST(DiscoveryDelta, ServiceChangePropagatesThroughDeltas) {
  Testbed testbed{13, noise_free_quality()};
  testbed.medium().configure(reliable_bluetooth());
  testbed.add_node("a", {0.0, 0.0}, fast_node(MobilityClass::kStatic));
  testbed.add_node("b", {8.0, 0.0}, fast_node(MobilityClass::kStatic));
  auto& a = testbed.node("a");
  auto& b = testbed.node("b");
  testbed.run_discovery_rounds(4);
  ASSERT_TRUE(a.daemon().storage().contains(b.mac()));

  // A new service bumps only the services generation; the requester must
  // pick it up via a delta (the full-fetch recheck interval is 5 s here, so
  // give it a couple of rounds).
  ASSERT_TRUE(b.daemon().register_service(ServiceInfo{"fresh.svc", "", 0}).ok());
  ASSERT_TRUE(testing::run_until(
      testbed,
      [&] {
        const auto record = a.daemon().storage().find(b.mac());
        return record.has_value() && record->provides("fresh.svc");
      },
      120.0))
      << "service change must reach the requester through the delta plane";
}

TEST(DiscoveryDelta, ResponderRestartInvalidatesBaselines) {
  Testbed testbed{14, noise_free_quality()};
  testbed.medium().configure(reliable_bluetooth());
  testbed.add_node("a", {0.0, 0.0}, fast_node(MobilityClass::kStatic));
  testbed.add_node("b", {8.0, 0.0}, fast_node(MobilityClass::kStatic));
  auto& a = testbed.node("a");
  auto& b = testbed.node("b");
  testbed.run_discovery_rounds(6);
  ASSERT_TRUE(a.daemon().storage().contains(b.mac()));

  // Restart b with different services: its generations regress and its epoch
  // changes. a's stale baseline must be ignored (full response), never
  // misread as "not modified".
  const std::uint64_t old_epoch = b.daemon().epoch();
  b.daemon().stop();
  ASSERT_TRUE(
      b.daemon().register_service(ServiceInfo{"after.restart", "", 0}).ok());
  b.daemon().start();
  EXPECT_NE(b.daemon().epoch(), old_epoch);
  ASSERT_TRUE(testing::run_until(
      testbed,
      [&] {
        const auto record = a.daemon().storage().find(b.mac());
        return record.has_value() && record->provides("after.restart");
      },
      200.0))
      << "restart must force full refetch despite matching generations";
}

}  // namespace
}  // namespace peerhood
