// ShardedSimulator: conservative windows, deterministic cross-shard
// delivery, and the shards=1 passthrough contract.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/sim_time.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace peerhood::sim {
namespace {

struct TraceEntry {
  std::int64_t at_us;
  std::uint32_t shard;
  std::uint64_t value;

  bool operator==(const TraceEntry&) const = default;
};

// Per-shard traces: each shard's events append only to their own vector
// (cross-shard messages append on the *destination* shard), so recording
// is race-free under the worker pool and the result is deterministic.
using Trace = std::vector<std::vector<TraceEntry>>;

// A deterministic mixed workload: each shard runs a self-rearming event
// chain that draws from its own RNG and occasionally posts a cross-shard
// message (stamped comfortably beyond the lookahead).
Trace run_workload(ShardedSimulator& core, SimDuration duration) {
  const std::uint32_t k = core.shard_count();
  auto trace = std::make_shared<Trace>(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    Simulator* sim = &core.shard(i);
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [&core, sim, i, k, trace, tick] {
      const std::uint64_t draw = sim->rng().next_u64();
      (*trace)[i].push_back({(sim->now() - SimTime{}).count(), i, draw});
      if (draw % 4 == 0 && k > 1) {
        const auto dst = static_cast<std::uint32_t>(draw % k);
        const SimTime at = sim->now() + milliseconds(50);
        core.post(i, dst, at, [trace, at, dst, draw] {
          (*trace)[dst].push_back({(at - SimTime{}).count(), dst, ~draw});
        });
      }
      sim->schedule_after(milliseconds(1 + draw % 7), [tick] { (*tick)(); });
    };
    sim->schedule_at(SimTime{} + milliseconds(i), [tick] { (*tick)(); });
  }
  core.run_for(duration);
  return *trace;
}

TEST(ShardCore, SingleShardMatchesPlainSimulator) {
  // shards=1 must be byte-identical to the unsharded kernel: same RNG
  // stream, same event order, zero window machinery.
  std::vector<TraceEntry> plain_trace;
  {
    Simulator sim{42};
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [&sim, &plain_trace, tick] {
      const std::uint64_t draw = sim.rng().next_u64();
      plain_trace.push_back({(sim.now() - SimTime{}).count(), 0, draw});
      sim.schedule_after(milliseconds(1 + draw % 7), [tick] { (*tick)(); });
    };
    sim.schedule_at(SimTime{}, [tick] { (*tick)(); });
    sim.run_for(seconds(2.0));
  }

  ShardedSimulator core{42, 1};
  const Trace sharded_trace = run_workload(core, seconds(2.0));

  ASSERT_EQ(sharded_trace.size(), 1u);
  EXPECT_EQ(plain_trace, sharded_trace[0]);
  EXPECT_EQ(core.stats().windows, 0u);  // the passthrough path ran
  EXPECT_EQ(core.control().now(), SimTime{} + seconds(2.0));
}

TEST(ShardCore, ReplayIsDeterministicAcrossShardCounts) {
  for (const std::uint32_t shards : {2u, 3u, 4u, 8u}) {
    ShardedSimulator a{7, shards};
    ShardedSimulator b{7, shards};
    const Trace trace_a = run_workload(a, seconds(3.0));
    const Trace trace_b = run_workload(b, seconds(3.0));
    ASSERT_FALSE(trace_a[0].empty());
    EXPECT_EQ(trace_a, trace_b) << "shards=" << shards;
    EXPECT_GT(a.stats().windows, 0u);
    EXPECT_EQ(a.stats().windows, b.stats().windows);
    EXPECT_EQ(a.stats().messages, b.stats().messages);
  }
}

TEST(ShardCore, ShardStreamsAreStableAcrossShardCounts) {
  // A shard's RNG stream depends on (seed, shard index) only — not on how
  // many shards exist — so re-partitioned runs stay comparable.
  ShardedSimulator a{13, 2};
  ShardedSimulator b{13, 8};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a.shard(0).rng().next_u64(), b.shard(0).rng().next_u64());
    EXPECT_EQ(a.shard(1).rng().next_u64(), b.shard(1).rng().next_u64());
  }
}

TEST(ShardCore, RunUntilAlignsEveryShardClock) {
  ShardedSimulator core{1, 4};
  const SimTime deadline = SimTime{} + seconds(1.5);
  run_workload(core, seconds(1.5));
  for (std::uint32_t i = 0; i < core.shard_count(); ++i) {
    EXPECT_EQ(core.shard(i).now(), deadline) << "shard " << i;
  }
}

TEST(ShardCore, CrossShardMessagesMergeInSourceOrder) {
  // Three shards post to shard 0 at the *same* timestamp; the merge must
  // apply them in (at, src shard, src seq) order regardless of which
  // worker finished first.
  ShardedSimulator core{3, 4};
  auto order = std::make_shared<std::vector<std::uint32_t>>();
  const SimTime fire = SimTime{} + milliseconds(100);
  for (std::uint32_t src = 1; src < 4; ++src) {
    // Two messages per source: seq breaks the tie within a source.
    core.shard(src).schedule_at(SimTime{}, [&core, src, fire, order] {
      core.post(src, 0, fire, [order, src] { order->push_back(src * 10); });
      core.post(src, 0, fire,
                [order, src] { order->push_back(src * 10 + 1); });
    });
  }
  core.run_until(SimTime{} + milliseconds(200));
  EXPECT_EQ(*order, (std::vector<std::uint32_t>{10, 11, 20, 21, 30, 31}));
}

TEST(ShardCore, ImmediateMessagesRunAtTheBarrier) {
  ShardedSimulator core{5, 2};
  auto ran = std::make_shared<int>(0);
  core.shard(1).schedule_at(SimTime{} + milliseconds(1), [&core, ran] {
    core.post(1, 0, core.shard(1).now(), [ran] { ++(*ran); },
              /*immediate=*/true);
  });
  core.run_until(SimTime{} + milliseconds(10));
  EXPECT_EQ(*ran, 1);
  EXPECT_EQ(core.stats().immediate, 1u);
}

TEST(ShardCore, LateMessageIsClampedNotTimeTravelled) {
  // A message stamped below the safe horizon (a lookahead violation) must
  // degrade to prompt delivery and be counted — never scheduled into the
  // destination's past.
  ShardedSimulator core{9, 2};
  auto delivered = std::make_shared<std::vector<std::int64_t>>();
  // Keep the destination busy so its clock is ahead when the late message
  // lands; record each event time so monotonicity is checkable.
  Simulator* dst = &core.shard(0);
  for (int i = 0; i < 200; ++i) {
    dst->schedule_at(SimTime{} + milliseconds(i), [dst, delivered] {
      delivered->push_back((dst->now() - SimTime{}).count());
    });
  }
  core.shard(1).schedule_at(SimTime{} + milliseconds(20), [&core, dst,
                                                          delivered] {
    // Stamped in the past relative to everything.
    core.post(1, 0, SimTime{} + milliseconds(1), [dst, delivered] {
      delivered->push_back((dst->now() - SimTime{}).count());
    });
  });
  core.run_until(SimTime{} + milliseconds(250));
  EXPECT_GE(core.stats().late_messages, 1u);
  for (std::size_t i = 1; i < delivered->size(); ++i) {
    EXPECT_LE((*delivered)[i - 1], (*delivered)[i]);
  }
}

TEST(ShardCore, WindowHookSeesEveryShardEveryWindow) {
  ShardedSimulator core{11, 3};
  std::array<std::atomic<std::uint64_t>, 3> hooks{};
  core.set_window_hook(
      [&hooks](std::uint32_t shard, SimTime) { ++hooks[shard]; });
  run_workload(core, seconds(1.0));
  const std::uint64_t windows = core.stats().windows;
  ASSERT_GT(windows, 0u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(hooks[i].load(), windows) << "shard " << i;
  }
}

TEST(ShardCore, WindowHorizonNeverRegresses) {
  // An event scheduled onto a long-idle shard lands in that shard's local
  // future but the fleet's past; the global window must swallow it without
  // rewinding, so per-shard hook horizons stay non-decreasing.
  ShardedSimulator core{21, 2};
  auto horizons = std::make_shared<std::vector<std::vector<std::int64_t>>>(2);
  core.set_window_hook([horizons](std::uint32_t shard, SimTime h) {
    (*horizons)[shard].push_back((h - SimTime{}).count());
  });
  auto ran_warped = std::make_shared<bool>(false);
  // Busy shard 0; shard 1 idles with its clock stuck at zero. Mid-run, a
  // barrier-immediate message schedules onto shard 1 "now + 100 ms" by its
  // stale clock — i.e. 400 ms in the fleet's past.
  for (int i = 0; i < 100; ++i) {
    core.shard(0).schedule_at(SimTime{} + milliseconds(10 * i), [] {});
  }
  core.shard(0).schedule_at(
      SimTime{} + milliseconds(500), [&core, ran_warped] {
        core.post(0, 1, core.shard(0).now(),
                  [&core, ran_warped] {
                    Simulator& idle = core.shard(1);
                    idle.schedule_at(idle.now() + milliseconds(100),
                                     [ran_warped] { *ran_warped = true; });
                  },
                  /*immediate=*/true);
      });
  core.run_until(SimTime{} + seconds(1.0));
  EXPECT_TRUE(*ran_warped);
  for (const auto& per_shard : *horizons) {
    for (std::size_t i = 1; i < per_shard.size(); ++i) {
      EXPECT_LE(per_shard[i - 1], per_shard[i]);
    }
  }
}

TEST(ShardCore, MailboxPreservesFifoOrder) {
  ShardMailbox box;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ShardMessage msg;
    msg.seq = i;
    box.push(std::move(msg));
  }
  ShardMessage out;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(box.pop(out));
    EXPECT_EQ(out.seq, i);
  }
  EXPECT_FALSE(box.pop(out));
}

}  // namespace
}  // namespace peerhood::sim
